package pseudo

import (
	"fmt"

	"prtree/internal/geom"
)

// PriorityDirs names the four priority-leaf directions in construction
// order: leftmost left edges, bottommost bottom edges, rightmost right
// edges, topmost top edges.
var PriorityDirs = [4]string{"xmin", "ymin", "xmax", "ymax"}

// Node is a pseudo-PR-tree node. A node is either a plain leaf (Items set,
// everything else empty) or an internal kd-node with up to four priority
// leaves and up to two children. Unlike a real R-tree, leaves appear at
// every level and internal nodes have degree at most six.
type Node struct {
	// Bounds is the minimal bounding box of every rectangle below the node.
	Bounds geom.Rect
	// Items is set for plain leaves only (at most B rectangles).
	Items []geom.Item
	// Priority holds the four priority leaves (index = direction; empty
	// slices mean the leaf does not exist).
	Priority [4][]geom.Item
	// Axis is the kd split axis (0..3) used to divide the remaining items.
	Axis int
	// SplitValue is the dividing coordinate on Axis.
	SplitValue float64
	// Left and Right are the recursive pseudo-PR-trees (nil when the
	// remaining set was empty).
	Left, Right *Node
}

// IsLeaf reports whether n is a plain leaf.
func (n *Node) IsLeaf() bool { return n.Items != nil }

// Tree is a pseudo-PR-tree together with its construction parameters.
type Tree struct {
	Root *Node
	B    int // leaf capacity
	N    int // rectangles stored
}

// Build constructs a pseudo-PR-tree with leaf capacity B on items using the
// exact recursive definition of Section 2.1: priority leaves are peeled off
// before the kd median is taken. The input slice is reordered in place.
// Divisions round to multiples of B (the paper's near-100%-utilization
// refinement) when roundToB is true.
func Build(items []geom.Item, b int, roundToB bool) *Tree {
	return buildTree(items, b, roundToB, true)
}

// BuildKDOnly constructs the ablated structure: the same four-dimensional
// kd-tree over the corner transform but WITHOUT priority leaves — i.e. the
// plain kd partition the PR-tree would be, were the paper's priority-leaf
// idea removed. It exists to measure how much of the worst-case robustness
// the priority leaves themselves contribute (see experiments.AblationPriority).
func BuildKDOnly(items []geom.Item, b int, roundToB bool) *Tree {
	return buildTree(items, b, roundToB, false)
}

func buildTree(items []geom.Item, b int, roundToB, priority bool) *Tree {
	if b < 1 {
		panic(fmt.Sprintf("pseudo: leaf capacity %d", b))
	}
	t := &Tree{B: b, N: len(items)}
	if len(items) > 0 {
		if priority {
			t.Root = build(items, b, 0, roundToB)
		} else {
			t.Root = buildKD(items, b, 0, roundToB)
		}
	}
	return t
}

// buildKD is the no-priority-leaf variant: a pure kd-tree whose leaves
// hold at most b items.
func buildKD(items []geom.Item, b, axis int, roundToB bool) *Node {
	n := &Node{Axis: axis & 3, Bounds: geom.ItemsMBR(items)}
	if len(items) <= b {
		n.Items = items
		return n
	}
	half := len(items) / 2
	if roundToB {
		if r := (half / b) * b; r > 0 {
			half = r
		}
	}
	less := axisLess(n.Axis)
	selectK(items, half, less)
	minRight := items[half]
	for _, it := range items[half+1:] {
		if less(it, minRight) {
			minRight = it
		}
	}
	n.SplitValue = minRight.Rect.Coord(n.Axis)
	n.Left = buildKD(items[:half:half], b, axis+1, roundToB)
	n.Right = buildKD(items[half:], b, axis+1, roundToB)
	return n
}

func build(items []geom.Item, b, axis int, roundToB bool) *Node {
	n := &Node{Axis: axis & 3, Bounds: geom.ItemsMBR(items)}
	if len(items) <= b {
		n.Items = items
		return n
	}

	if len(items) <= 4*b {
		// Too few rectangles to fill four priority leaves and recurse:
		// split evenly into <= 4 priority leaves of >= len/4 >= B/4 each
		// (footnote 2 + the "slightly smaller priority leaves" refinement),
		// leaving no remainder.
		rest := items
		groups := (len(items) + b - 1) / b
		for dir := 0; dir < groups; dir++ {
			take := len(rest) / (groups - dir)
			if dir == groups-1 {
				take = len(rest)
			}
			selectK(rest, take, extremeLess(dir))
			n.Priority[dir] = rest[:take:take]
			rest = rest[take:]
		}
		return n
	}

	rest := items
	for dir := 0; dir < 4; dir++ {
		selectK(rest, b, extremeLess(dir))
		n.Priority[dir] = rest[:b:b]
		rest = rest[b:]
	}

	// kd-split the remainder on the round-robin axis. Rounding the division
	// to a multiple of B keeps kd leaves full (the paper's near-100%
	// utilization refinement); when that rounds to zero the remainder is
	// small enough to hang off a single child, which the recursion then
	// splits into full leaves.
	half := len(rest) / 2
	if roundToB {
		half = (half / b) * b
	}
	if half == 0 || half == len(rest) {
		// Cannot split (all remaining on one side); make a child leaf.
		n.Left = build(rest, b, axis+1, roundToB)
		n.SplitValue = rest[0].Rect.Coord(n.Axis)
		return n
	}
	less := axisLess(n.Axis)
	selectK(rest, half, less)
	// The split value is the least right-side coordinate: quickselect only
	// guarantees rest[:half] <= rest[half:] element-wise, not that
	// rest[half] is the minimum of the tail.
	minRight := rest[half]
	for _, it := range rest[half+1:] {
		if less(it, minRight) {
			minRight = it
		}
	}
	n.SplitValue = minRight.Rect.Coord(n.Axis)
	n.Left = build(rest[:half:half], b, axis+1, roundToB)
	n.Right = build(rest[half:], b, axis+1, roundToB)
	return n
}

// LeafGroup is one leaf of the pseudo-PR-tree: either a priority leaf or a
// plain kd leaf. The PR-tree construction of Section 2.2 keeps exactly
// these groups (as R-tree nodes) and discards the internal kd structure.
type LeafGroup struct {
	Items    []geom.Item
	Priority bool // true for priority leaves
	Dir      int  // priority direction when Priority
}

// Leaves returns every leaf group in depth-first order (priority leaves of
// a node before its children), which keeps spatially coherent groups
// adjacent for the level above.
func (t *Tree) Leaves() []LeafGroup {
	var out []LeafGroup
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			out = append(out, LeafGroup{Items: n.Items})
			return
		}
		for dir := 0; dir < 4; dir++ {
			if len(n.Priority[dir]) > 0 {
				out = append(out, LeafGroup{Items: n.Priority[dir], Priority: true, Dir: dir})
			}
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	return out
}

// QueryStats counts the work of one pseudo-PR-tree window query in blocks:
// each internal node occupies O(1) blocks and each (priority or plain)
// leaf one block.
type QueryStats struct {
	InternalVisited int
	LeavesVisited   int
	Results         int
}

// Query reports every rectangle intersecting q to fn and returns the visit
// statistics. Traversal follows the standard R-tree procedure: visit every
// child whose bounding box intersects q.
func (t *Tree) Query(q geom.Rect, fn func(geom.Item) bool) QueryStats {
	var st QueryStats
	if t.Root != nil {
		t.query(t.Root, q, fn, &st)
	}
	return st
}

func (t *Tree) query(n *Node, q geom.Rect, fn func(geom.Item) bool, st *QueryStats) bool {
	if n.IsLeaf() {
		st.LeavesVisited++
		return scanLeaf(n.Items, q, fn, st)
	}
	st.InternalVisited++
	for dir := 0; dir < 4; dir++ {
		p := n.Priority[dir]
		if len(p) == 0 {
			continue
		}
		if q.Intersects(geom.ItemsMBR(p)) {
			st.LeavesVisited++
			if !scanLeaf(p, q, fn, st) {
				return false
			}
		}
	}
	for _, c := range []*Node{n.Left, n.Right} {
		if c != nil && q.Intersects(c.Bounds) {
			if !t.query(c, q, fn, st) {
				return false
			}
		}
	}
	return true
}

func scanLeaf(items []geom.Item, q geom.Rect, fn func(geom.Item) bool, st *QueryStats) bool {
	for _, it := range items {
		if q.Intersects(it.Rect) {
			st.Results++
			if fn != nil && !fn(it) {
				return false
			}
		}
	}
	return true
}

// Validate checks the pseudo-PR-tree invariants and returns the first
// violation:
//
//   - Bounds is the exact MBR of the subtree;
//   - leaf and priority-leaf sizes are within capacity;
//   - every priority leaf contains the extreme rectangles of the whole
//     subtree below its node in its direction (after earlier leaves are
//     removed);
//   - kd children satisfy the split: left items have Coord(axis) <= split,
//     right items >= split (on the splitting key with tie-break);
//   - total item count matches.
func (t *Tree) Validate() error {
	if t.Root == nil {
		if t.N != 0 {
			return fmt.Errorf("pseudo: nil root with N=%d", t.N)
		}
		return nil
	}
	n, err := validate(t.Root, t.B)
	if err != nil {
		return err
	}
	if n != t.N {
		return fmt.Errorf("pseudo: %d items found, tree reports %d", n, t.N)
	}
	return nil
}

func validate(n *Node, b int) (int, error) {
	subtree := collect(n, nil)
	if got := geom.ItemsMBR(subtree); got != n.Bounds {
		return 0, fmt.Errorf("pseudo: bounds %v, actual MBR %v", n.Bounds, got)
	}
	if n.IsLeaf() {
		if len(n.Items) == 0 || len(n.Items) > b {
			return 0, fmt.Errorf("pseudo: leaf with %d items (capacity %d)", len(n.Items), b)
		}
		return len(n.Items), nil
	}
	// Priority extremity: leaf dir's worst member must be at least as
	// extreme as every rectangle in later leaves and the children.
	remaining := subtree
	count := 0
	for dir := 0; dir < 4; dir++ {
		p := n.Priority[dir]
		if len(p) > b {
			return 0, fmt.Errorf("pseudo: priority leaf %s with %d items", PriorityDirs[dir], len(p))
		}
		if len(p) == 0 {
			continue
		}
		count += len(p)
		less := extremeLess(dir)
		// Find the least extreme member of p.
		worst := p[0]
		inLeaf := make(map[uint32]bool, len(p))
		for _, it := range p {
			if less(worst, it) {
				worst = it
			}
			inLeaf[it.ID] = true
		}
		next := remaining[:0:0]
		for _, it := range remaining {
			if !inLeaf[it.ID] {
				next = append(next, it)
			}
		}
		remaining = next
		for _, it := range remaining {
			if less(it, worst) {
				return 0, fmt.Errorf("pseudo: %s priority leaf misses more-extreme item %d", PriorityDirs[dir], it.ID)
			}
		}
	}
	// kd split invariant: all subtree items of the left child order at or
	// below the split coordinate, right child at or above (items equal to
	// the split value may sit on either side thanks to the id tie-break).
	if n.Left != nil && n.Right != nil {
		for _, it := range collect(n.Left, nil) {
			if it.Rect.Coord(n.Axis) > n.SplitValue {
				return 0, fmt.Errorf("pseudo: left child item %d violates split %g on axis %d", it.ID, n.SplitValue, n.Axis)
			}
		}
		for _, it := range collect(n.Right, nil) {
			if it.Rect.Coord(n.Axis) < n.SplitValue {
				return 0, fmt.Errorf("pseudo: right child item %d violates split %g on axis %d", it.ID, n.SplitValue, n.Axis)
			}
		}
	}
	for _, c := range []*Node{n.Left, n.Right} {
		if c == nil {
			continue
		}
		cn, err := validate(c, b)
		if err != nil {
			return 0, err
		}
		count += cn
	}
	return count, nil
}

func collect(n *Node, out []geom.Item) []geom.Item {
	if n == nil {
		return out
	}
	if n.IsLeaf() {
		return append(out, n.Items...)
	}
	for dir := 0; dir < 4; dir++ {
		out = append(out, n.Priority[dir]...)
	}
	out = collect(n.Left, out)
	return collect(n.Right, out)
}

// Items returns every rectangle stored in the tree.
func (t *Tree) Items() []geom.Item {
	return collect(t.Root, nil)
}
