package pseudo

import (
	"container/heap"
	"math"
	"sort"

	"prtree/internal/extsort"
	"prtree/internal/geom"
	"prtree/internal/storage"
)

// ExternalConfig parameterizes the grid-based external construction.
type ExternalConfig struct {
	B int // leaf capacity (records per block)
	M int // records that fit in main memory
	// Workers bounds the construction's parallelism (clamped to
	// GOMAXPROCS; zero or one means serial): the grid stage's four axis
	// sorts run concurrently — each inner sort receiving a quarter of the
	// budget — and each sort parallelizes its run formation and merge
	// groups. Block-I/O counts and the emitted leaf groups are identical
	// at every worker count; the axis-sort phase temporarily holds up to
	// about (Workers+4)*M records of chunk buffers instead of M.
	Workers int
}

// BuildExternal partitions the rectangles of in into pseudo-PR-tree leaf
// groups using the external grid algorithm of Section 2.1: four sorted
// lists, a z^4 in-memory grid with z = Theta(M^(1/4)) to build Theta(log M)
// kd levels per round, priority-leaf filling by filtering, and distribution
// of the sorted lists to the recursive subproblems. Every pass streams
// through storage.ItemFile so the O((N/B) log_{M/B}(N/B)) I/O cost is
// measured on the disk.
//
// The kd divisions follow the paper's external variant: priority
// rectangles are not removed before the division is computed (the query
// bound of Lemma 2 is unaffected; each child still receives at most half
// of its parent's points). The input file is consumed and freed.
func BuildExternal(disk storage.Backend, in *storage.ItemFile, cfg ExternalConfig, emit func(LeafGroup)) {
	if cfg.B < 1 {
		panic("pseudo: external build with B < 1")
	}
	perBlock := storage.ItemsPerBlock(disk.BlockSize())
	if cfg.M < 4*perBlock {
		panic("pseudo: external build with M below four blocks")
	}
	if in.Len() <= cfg.M {
		items := in.ReadAll()
		in.Free()
		emitInMemory(items, cfg.B, emit)
		return
	}
	lists := sortAxes(disk, in, cfg)
	in.Free()
	e := &externalBuilder{disk: disk, cfg: cfg, emit: emit}
	e.recurse(lists, 0)
}

// sortAxes produces the four corner-transform orderings of in. With
// Workers > 1 the four sorts run concurrently; each sort's reads and
// writes are those of its serial execution, so the total block-I/O count
// is unchanged.
func sortAxes(disk storage.Backend, in *storage.ItemFile, cfg ExternalConfig) [4]*storage.ItemFile {
	var lists [4]*storage.ItemFile
	// Four sorts run concurrently, so each inner sort gets a quarter of
	// the worker budget: total goroutines and transient chunk memory stay
	// proportional to Workers, not 4x it.
	scfg := extsort.Config{MemoryItems: cfg.M, Workers: (cfg.Workers + 3) / 4}
	extsort.Parallel(cfg.Workers, 4, func(d int) {
		lists[d] = extsort.Sort(disk, in, extsort.AxisKey(d), scfg)
	})
	return lists
}

func emitInMemory(items []geom.Item, b int, emit func(LeafGroup)) {
	if len(items) == 0 {
		return
	}
	t := Build(items, b, true)
	for _, lg := range t.Leaves() {
		emit(lg)
	}
}

// key2 is a point in one dimension of the strict total order
// (coordinate, id) used for all divisions.
type key2 struct {
	v   float64
	tie uint32
}

func (k key2) less(o key2) bool {
	if k.v != o.v {
		return k.v < o.v
	}
	return k.tie < o.tie
}

func negInfKey() key2 { return key2{v: math.Inf(-1)} }
func posInfKey() key2 { return key2{v: math.Inf(1), tie: ^uint32(0)} }

func itemKey(it geom.Item, axis int) key2 {
	return key2{v: it.Rect.Coord(axis), tie: it.ID}
}

// slab is a half-open interval [lo, next.lo) of one dimension's total
// order, together with the record range it occupies in that dimension's
// sorted list.
type slab struct {
	id         int32
	lo         key2
	start, end int
}

// region is a 4-dimensional box in total-order space; bounds always
// coincide with slab boundaries.
type region struct {
	lo, hi [4]key2 // half-open: lo <= key < hi
}

func (r region) contains(it geom.Item) bool {
	for d := 0; d < 4; d++ {
		k := itemKey(it, d)
		if k.less(r.lo[d]) || !k.less(r.hi[d]) {
			return false
		}
	}
	return true
}

// cellKey identifies a grid cell by its four slab ids.
type cellKey [4]int32

// extNode is one internal node of the in-memory kd-subtree built per round.
type extNode struct {
	axis        int
	key         key2 // items with (coord, id) < key go left
	left, right int  // >= 0: node index; < 0: leaf region ~(idx)
	pq          [4]*prioHeap
}

type externalBuilder struct {
	disk storage.Backend
	cfg  ExternalConfig
	emit func(LeafGroup)

	// Per-round state.
	slabs   [4][]slab
	nextID  int32
	counts  map[cellKey]int
	lists   [4]*storage.ItemFile
	nodes   []extNode
	regions []region
	axis0   int
}

func (e *externalBuilder) recurse(lists [4]*storage.ItemFile, axis int) {
	n := lists[0].Len()
	if n == 0 {
		for d := 0; d < 4; d++ {
			lists[d].Free()
		}
		return
	}
	if n <= e.cfg.M {
		items := lists[0].ReadAll()
		for d := 0; d < 4; d++ {
			lists[d].Free()
		}
		emitInMemory(items, e.cfg.B, e.emit)
		return
	}

	e.lists = lists
	e.axis0 = axis
	e.buildGrid(n)
	levels := e.kdLevels(n)
	e.nodes = e.nodes[:0]
	e.regions = e.regions[:0]
	root := e.buildSubtree(fullRegion(), n, 0, levels)

	if root < 0 {
		// Could not split at all (pathological duplicates): fall back to
		// in-memory construction despite the memory budget.
		items := lists[0].ReadAll()
		for d := 0; d < 4; d++ {
			lists[d].Free()
		}
		emitInMemory(items, e.cfg.B, e.emit)
		return
	}

	e.fillPriorityLeaves(root)
	placed := e.placedIDs()
	outLists := e.distribute(placed)
	for d := 0; d < 4; d++ {
		lists[d].Free()
	}
	// Emit priority leaves and recurse into leaf regions in DFS order so
	// that spatially close groups stay adjacent for the level above.
	e.finish(root, outLists, axis, levels)
}

// kdLevels picks how many kd levels to build this round: log2(z) with
// z = Theta(M^(1/4)), clamped to keep at least one level.
func (e *externalBuilder) kdLevels(n int) int {
	z := int(math.Floor(math.Pow(float64(e.cfg.M), 0.25)))
	if z < 2 {
		z = 2
	}
	if z > 64 {
		z = 64
	}
	levels := 0
	for 1<<(levels+1) <= z {
		levels++
	}
	if levels < 1 {
		levels = 1
	}
	return levels
}

func fullRegion() region {
	var r region
	for d := 0; d < 4; d++ {
		r.lo[d] = negInfKey()
		r.hi[d] = posInfKey()
	}
	return r
}

// buildGrid reads the z-quantiles of each sorted list, initializes the
// slab structures, and counts every item into its grid cell with one scan.
func (e *externalBuilder) buildGrid(n int) {
	z := int(math.Floor(math.Pow(float64(e.cfg.M), 0.25)))
	if z < 2 {
		z = 2
	}
	if z > 64 {
		z = 64
	}
	if z > n {
		z = n
	}
	e.nextID = 0
	for d := 0; d < 4; d++ {
		e.slabs[d] = e.slabs[d][:0]
		prev := negInfKey()
		start := 0
		for k := 1; k <= z; k++ {
			end := k * n / z
			if k == z {
				end = n
			}
			if end <= start {
				continue
			}
			e.slabs[d] = append(e.slabs[d], slab{id: e.nextID, lo: prev, start: start, end: end})
			e.nextID++
			if k < z {
				r := e.lists[d].ReaderAt(end)
				it, ok := r.Next()
				if !ok {
					break
				}
				prev = itemKey(it, d)
				start = end
			}
		}
	}
	e.counts = make(map[cellKey]int, 1<<12)
	r := e.lists[0].Reader()
	for {
		it, ok := r.Next()
		if !ok {
			break
		}
		e.counts[e.cellOf(it)]++
	}
}

// slabIndex returns the index of the slab of dimension d containing key k.
func (e *externalBuilder) slabIndex(d int, k key2) int {
	s := e.slabs[d]
	lo, hi := 0, len(s)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if !k.less(s[mid].lo) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

func (e *externalBuilder) cellOf(it geom.Item) cellKey {
	var c cellKey
	for d := 0; d < 4; d++ {
		c[d] = e.slabs[d][e.slabIndex(d, itemKey(it, d))].id
	}
	return c
}

// buildSubtree recursively splits region (holding total items) on the
// round-robin axis until depth levels are built or the region fits in
// memory. It returns a node index (>= 0) or ~regionIndex (< 0).
func (e *externalBuilder) buildSubtree(r region, total, depth, levels int) int {
	if depth >= levels || total <= e.cfg.M/2 {
		e.regions = append(e.regions, r)
		return ^(len(e.regions) - 1)
	}
	axis := (e.axis0 + depth) & 3
	key, leftCount, ok := e.split(r, axis, total)
	if !ok {
		e.regions = append(e.regions, r)
		return ^(len(e.regions) - 1)
	}
	leftR, rightR := r, r
	leftR.hi[axis] = key
	rightR.lo[axis] = key
	idx := len(e.nodes)
	e.nodes = append(e.nodes, extNode{axis: axis, key: key})
	for dir := 0; dir < 4; dir++ {
		e.nodes[idx].pq[dir] = newPrioHeap(dir, e.cfg.B)
	}
	l := e.buildSubtree(leftR, leftCount, depth+1, levels)
	rgt := e.buildSubtree(rightR, total-leftCount, depth+1, levels)
	e.nodes[idx].left = l
	e.nodes[idx].right = rgt
	return idx
}

// split finds the exact weighted median of region r along axis using the
// grid counts plus one scan of the median slab from the sorted list, then
// refines the grid at the split key. It returns the split key and the
// exact number of region items strictly below it.
func (e *externalBuilder) split(r region, axis, total int) (key2, int, bool) {
	if total < 2 {
		return key2{}, 0, false
	}
	target := total / 2
	if target == 0 {
		target = 1
	}

	// Identify the in-region slab id sets of every dimension; region bounds
	// always coincide with slab boundaries, so a slab is in the region
	// exactly when its lower bound lies in [lo, hi).
	var inRegion [4]map[int32]bool
	for d := 0; d < 4; d++ {
		inRegion[d] = make(map[int32]bool)
		for _, s := range e.slabs[d] {
			if !s.lo.less(r.lo[d]) && s.lo.less(r.hi[d]) {
				inRegion[d][s.id] = true
			}
		}
	}
	// Per-slab region counts along axis.
	slabCount := make(map[int32]int)
	for c, cnt := range e.counts {
		in := true
		for d := 0; d < 4; d++ {
			if !inRegion[d][c[d]] {
				in = false
				break
			}
		}
		if in {
			slabCount[c[axis]] += cnt
		}
	}
	// Walk the axis slabs in order to find the slab holding the target.
	cum := 0
	var median slab
	medianIdx := -1
	for i, s := range e.slabs[axis] {
		if !inRegion[axis][s.id] {
			continue
		}
		cnt := slabCount[s.id]
		if cum+cnt >= target && cnt > 0 {
			median = s
			medianIdx = i
			break
		}
		cum += cnt
	}
	if medianIdx < 0 {
		return key2{}, 0, false
	}

	// Scan the median slab's record range from the axis-sorted list; the
	// slab's records are contiguous there (cost O(slabSize/B) block reads).
	all := make([]geom.Item, 0, median.end-median.start)
	rd := e.lists[axis].ReaderAt(median.start)
	for i := median.start; i < median.end; i++ {
		it, ok := rd.Next()
		if !ok {
			break
		}
		all = append(all, it)
	}
	// Rank the region members of the slab; records are already sorted by
	// (coord, id) on axis.
	rank := target - cum // number of the slab's region items going left
	var split key2
	seen := 0
	idxInAll := -1
	for i, it := range all {
		if r.contains(it) {
			seen++
			if seen == rank+1 {
				split = itemKey(it, axis)
				idxInAll = i
				break
			}
		}
	}
	if idxInAll < 0 {
		// Every region item of the median slab goes left: split exactly at
		// the slab's upper boundary (the next slab's lower bound), which
		// requires no grid refinement. If the median slab is the last one
		// in the region, the right side would be empty and no split exists.
		if medianIdx+1 >= len(e.slabs[axis]) {
			return key2{}, 0, false
		}
		next := e.slabs[axis][medianIdx+1].lo
		if !next.less(r.hi[axis]) {
			return key2{}, 0, false
		}
		return next, cum + seen, true
	}
	leftCount := cum + rank

	// Refine the grid: divide the median slab at the split key and
	// recount the affected cells exactly from the scan.
	k := sort.Search(len(all), func(i int) bool {
		return !itemKey(all[i], axis).less(split)
	})
	newID := e.nextID
	e.nextID++
	si := e.slabIndexByID(axis, median.id)
	right := slab{id: newID, lo: split, start: median.start + k, end: median.end}
	e.slabs[axis][si].end = median.start + k
	e.slabs[axis] = append(e.slabs[axis], slab{})
	copy(e.slabs[axis][si+2:], e.slabs[axis][si+1:])
	e.slabs[axis][si+1] = right
	// Purge counts involving the median slab and re-add from the scan.
	for c := range e.counts {
		if c[axis] == median.id {
			delete(e.counts, c)
		}
	}
	for _, it := range all {
		e.counts[e.cellOf(it)]++
	}
	return split, leftCount, true
}

func (e *externalBuilder) slabIndexByID(d int, id int32) int {
	for i, s := range e.slabs[d] {
		if s.id == id {
			return i
		}
	}
	panic("pseudo: slab id not found")
}

// fillPriorityLeaves streams every item through the kd-subtree, maintaining
// the B most extreme rectangles per direction per node with bounded heaps;
// displaced rectangles continue filtering exactly as in the paper.
func (e *externalBuilder) fillPriorityLeaves(root int) {
	r := e.lists[0].Reader()
	for {
		it, ok := r.Next()
		if !ok {
			return
		}
		cur := it
		node := root
		for node >= 0 {
			n := &e.nodes[node]
			placedHere := false
			for dir := 0; dir < 4; dir++ {
				pq := n.pq[dir]
				if pq.Len() < pq.cap {
					heap.Push(pq, cur)
					placedHere = true
					break
				}
				if pq.moreExtreme(cur, pq.items[0]) {
					cur, pq.items[0] = pq.items[0], cur
					heap.Fix(pq, 0)
				}
			}
			if placedHere {
				break
			}
			if itemKey(cur, n.axis).less(n.key) {
				node = n.left
			} else {
				node = n.right
			}
		}
	}
}

func (e *externalBuilder) placedIDs() map[uint32]bool {
	placed := make(map[uint32]bool)
	for i := range e.nodes {
		for dir := 0; dir < 4; dir++ {
			for _, it := range e.nodes[i].pq[dir].items {
				placed[it.ID] = true
			}
		}
	}
	return placed
}

// distribute scans each sorted list once, routing every unplaced item to
// its leaf region's list for that dimension (order is preserved, so the
// child lists remain sorted).
func (e *externalBuilder) distribute(placed map[uint32]bool) [][4]*storage.ItemFile {
	out := make([][4]*storage.ItemFile, len(e.regions))
	for i := range out {
		for d := 0; d < 4; d++ {
			out[i][d] = storage.NewItemFile(e.disk)
		}
	}
	for d := 0; d < 4; d++ {
		rd := e.lists[d].Reader()
		for {
			it, ok := rd.Next()
			if !ok {
				break
			}
			if placed[it.ID] {
				continue
			}
			out[e.routeToRegion(it)][d].Append(it)
		}
	}
	for i := range out {
		for d := 0; d < 4; d++ {
			out[i][d].Seal()
		}
	}
	return out
}

func (e *externalBuilder) routeToRegion(it geom.Item) int {
	node := 0
	for node >= 0 {
		n := &e.nodes[node]
		if itemKey(it, n.axis).less(n.key) {
			node = n.left
		} else {
			node = n.right
		}
	}
	return ^node
}

// finish emits the round's priority leaves and recurses into leaf regions
// in depth-first order. The builder's per-round state is copied out first
// because recursion reuses it.
func (e *externalBuilder) finish(root int, outLists [][4]*storage.ItemFile, axis, levels int) {
	nodes := make([]extNode, len(e.nodes))
	copy(nodes, e.nodes)
	regionDepth := make([]int, len(e.regions))
	var markDepth func(idx, depth int)
	markDepth = func(idx, depth int) {
		if idx < 0 {
			regionDepth[^idx] = depth
			return
		}
		markDepth(nodes[idx].left, depth+1)
		markDepth(nodes[idx].right, depth+1)
	}
	markDepth(root, 0)

	var dfs func(idx int)
	dfs = func(idx int) {
		if idx < 0 {
			ri := ^idx
			e.recurse(outLists[ri], axis+regionDepth[ri])
			return
		}
		n := nodes[idx]
		for dir := 0; dir < 4; dir++ {
			if items := n.pq[dir].items; len(items) > 0 {
				e.emit(LeafGroup{Items: items, Priority: true, Dir: dir})
			}
		}
		dfs(n.left)
		dfs(n.right)
	}
	dfs(root)
}

// prioHeap keeps the capacity-B most extreme items in one direction; the
// heap top is the least extreme member (the eviction candidate).
type prioHeap struct {
	items []geom.Item
	cap   int
	// moreExtreme(a, b) reports a strictly more extreme than b.
	moreExtreme func(a, b geom.Item) bool
}

func newPrioHeap(dir, capacity int) *prioHeap {
	return &prioHeap{cap: capacity, moreExtreme: extremeLess(dir)}
}

func (h *prioHeap) Len() int { return len(h.items) }
func (h *prioHeap) Less(i, j int) bool {
	// Min-extremeness heap: the root is the least extreme item.
	return h.moreExtreme(h.items[j], h.items[i])
}
func (h *prioHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *prioHeap) Push(x interface{}) { h.items = append(h.items, x.(geom.Item)) }
func (h *prioHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}
