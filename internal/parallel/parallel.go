// Package parallel provides the bounded worker-pool discipline shared by
// every concurrent stage in this repository: the bulk-load pipeline's sort
// and merge fan-outs (via extsort.Parallel) and the query engine's batch
// executors (rtree.QueryBatch, prtreed.QueryBatch).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Bound clamps a requested worker count to [1, GOMAXPROCS]: more goroutines
// than schedulable threads only add contention, and anything below one
// means serial.
func Bound(workers int) int {
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Run executes fn(0), ..., fn(n-1) on up to workers goroutines (bounded by
// GOMAXPROCS) and returns when all calls have finished. With workers <= 1
// the calls run serially on the caller's goroutine. Iterations are claimed
// from a shared counter, so callers must not assume any execution order; a
// panic in any call is re-raised on the caller's goroutine once every
// worker has stopped.
func Run(workers, n int, fn func(i int)) {
	workers = Bound(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
		pmu    sync.Mutex
		pval   any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pmu.Lock()
					if pval == nil {
						pval = r
					}
					pmu.Unlock()
				}
			}()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if pval != nil {
		panic(pval)
	}
}
