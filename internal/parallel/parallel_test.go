package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	for _, workers := range []int{1, 2, 4, 8, 100} {
		const n = 500
		hits := make([]atomic.Int32, n)
		Run(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunSerialOnCallerGoroutine(t *testing.T) {
	order := []int{}
	Run(1, 5, func(i int) { order = append(order, i) }) // no synchronization: must be the caller's goroutine
	for i, v := range order {
		if v != i {
			t.Fatalf("serial run out of order: %v", order)
		}
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	Run(4, 50, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
}

func TestBound(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	if got := Bound(0); got != 1 {
		t.Errorf("Bound(0) = %d", got)
	}
	if got := Bound(-3); got != 1 {
		t.Errorf("Bound(-3) = %d", got)
	}
	if got := Bound(100); got != 4 {
		t.Errorf("Bound(100) = %d, want GOMAXPROCS", got)
	}
	if got := Bound(2); got != 2 {
		t.Errorf("Bound(2) = %d", got)
	}
}
