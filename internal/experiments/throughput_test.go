package experiments

import (
	"runtime"
	"strings"
	"testing"
)

// TestQueryThroughputIOIdentity runs the throughput sweep at a small scale
// and checks the experiment's own invariant column: every worker count must
// report block-I/O identical to serial.
func TestQueryThroughputIOIdentity(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	tab := QueryThroughput(Config{Scale: 0.05, Queries: 10, QueryWorkers: 4})
	if tab.ID != "throughput" {
		t.Fatalf("id = %q", tab.ID)
	}
	if len(tab.Rows) != 3 { // workers 1, 2, 4
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[4] != "identical" {
			t.Errorf("workers=%s: block-I/O %s vs serial: %s", row[0], row[3], row[4])
		}
		if row[3] != tab.Rows[0][3] {
			t.Errorf("workers=%s: aggregate blockIO %s, serial reported %s", row[0], row[3], tab.Rows[0][3])
		}
	}
	if !strings.Contains(tab.Render(), "queries/sec") {
		t.Error("render lost the throughput column")
	}
}
