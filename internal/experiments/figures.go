package experiments

import (
	"fmt"

	"prtree/internal/bulk"
	"prtree/internal/dataset"
	"prtree/internal/geom"
	"prtree/internal/workload"
)

// Fig9 reproduces Figure 9: bulk-loading cost (block I/Os and wall time)
// of H/H4, PR and TGS on the Western and Eastern TIGER stand-ins. The
// paper's shape: H and H4 cheapest, PR ~2.5x H in I/Os, TGS ~4.5x PR.
func Fig9(cfg Config) Table {
	cfg = cfg.normalized()
	east := dataset.Eastern(cfg.n(120000), cfg.Seed)
	west := dataset.Western(cfg.n(120000), cfg.Seed)
	opt := cfg.bulkOptions()
	t := Table{
		ID:      "fig9",
		Title:   "Bulk-loading performance on TIGER-like data (I/Os and seconds)",
		Columns: []string{"tree", "western I/O", "western time", "eastern I/O", "eastern time"},
		Notes:   "paper: H=H4 < PR (~2.5x H) < TGS (~4.5x PR) in I/Os",
	}
	for _, l := range paperLoaders {
		rw := buildTree(l, west, opt)
		re := buildTree(l, east, opt)
		t.Rows = append(t.Rows, []string{
			l.String(),
			fmtInt(rw.io.Total()), fmtDur(rw.dur),
			fmtInt(re.io.Total()), fmtDur(re.dur),
		})
	}
	return t
}

// Fig10 reproduces Figure 10: bulk-loading I/Os on the five Eastern
// prefixes of increasing size; H/H4/PR scale linearly, TGS slightly
// superlinearly.
func Fig10(cfg Config) Table {
	cfg = cfg.normalized()
	regions := dataset.EasternRegions(cfg.n(120000), cfg.Seed)
	opt := cfg.bulkOptions()
	t := Table{
		ID:    "fig10",
		Title: "Bulk-loading I/Os vs dataset size (Eastern prefixes)",
		Notes: "paper: near-linear growth for H/H4/PR; TGS slightly superlinear",
	}
	t.Columns = []string{"tree"}
	for _, r := range regions {
		t.Columns = append(t.Columns, fmt.Sprintf("n=%d", len(r)))
	}
	for _, l := range paperLoaders {
		row := []string{l.String()}
		for _, items := range regions {
			res := buildTree(l, items, opt)
			row = append(row, fmtInt(res.io.Total()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig11 reproduces Figure 11: TGS bulk-loading time depends on the data
// distribution (size and aspect sweeps), unlike the other loaders.
func Fig11(cfg Config) Table {
	cfg = cfg.normalized()
	n := cfg.n(60000)
	opt := cfg.bulkOptions()
	t := Table{
		ID:      "fig11",
		Title:   "TGS bulk-loading cost across synthetic distributions",
		Columns: []string{"dataset", "TGS I/O", "TGS time", "PR I/O (reference)"},
		Notes:   "paper: TGS cost varies strongly with distribution; PR does not",
	}
	addRow := func(name string, items []geom.Item) {
		rt := buildTree(bulk.LoaderTGS, items, opt)
		rp := buildTree(bulk.LoaderPR, items, opt)
		t.Rows = append(t.Rows, []string{name, fmtInt(rt.io.Total()), fmtDur(rt.dur), fmtInt(rp.io.Total())})
	}
	for i, ms := range []float64{0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2} {
		addRow(fmt.Sprintf("size(%g)", ms), dataset.Size(n, ms, cfg.Seed+int64(i)))
	}
	for i, a := range []float64{10, 100, 1000, 10000, 100000} {
		addRow(fmt.Sprintf("aspect(%g)", a), dataset.Aspect(n, a, cfg.Seed+100+int64(i)))
	}
	return t
}

// queryFigure is the shared engine of Figures 12-14: build all four trees
// once per dataset and measure square-window query cost.
func queryFigure(id, title string, cfg Config, items []geom.Item, areas []float64) Table {
	opt := cfg.bulkOptions()
	world := geom.ItemsMBR(items)
	t := Table{
		ID:      id,
		Title:   title,
		Columns: []string{"query area", "T/B"},
		Notes:   "cost = 100% means exactly T/B leaf blocks read (the lower bound)",
	}
	for _, l := range paperLoaders {
		t.Columns = append(t.Columns, l.String())
	}
	trees := make(map[bulk.Loader]*buildResult)
	for _, l := range paperLoaders {
		r := buildTree(l, items, opt)
		trees[l] = &r
	}
	for qi, area := range areas {
		queries := workload.Squares(world, area, cfg.Queries, cfg.Seed+int64(qi))
		row := []string{fmt.Sprintf("%.2f%%", area*100), ""}
		var tb float64
		for _, l := range paperLoaders {
			c := measureQueries(trees[l].tree, queries)
			tb = c.AvgResults / float64(trees[l].tree.Config().Fanout)
			row = append(row, fmtPct(c.Pct))
		}
		row[1] = fmt.Sprintf("%.0f", tb)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig12 reproduces Figure 12: query cost vs query size on Western data.
func Fig12(cfg Config) Table {
	cfg = cfg.normalized()
	items := dataset.Western(cfg.n(120000), cfg.Seed)
	return queryFigure("fig12",
		"Query cost vs query size, Western TIGER-like data (100% = T/B)",
		cfg, items, []float64{0.0025, 0.005, 0.0075, 0.01, 0.0125, 0.015, 0.0175, 0.02})
}

// Fig13 reproduces Figure 13: query cost vs query size on Eastern data.
func Fig13(cfg Config) Table {
	cfg = cfg.normalized()
	items := dataset.Eastern(cfg.n(120000), cfg.Seed)
	return queryFigure("fig13",
		"Query cost vs query size, Eastern TIGER-like data (100% = T/B)",
		cfg, items, []float64{0.0025, 0.005, 0.0075, 0.01, 0.0125, 0.015, 0.0175, 0.02})
}

// Fig14 reproduces Figure 14: query cost at fixed 1% query area across the
// five Eastern prefixes.
func Fig14(cfg Config) Table {
	cfg = cfg.normalized()
	regions := dataset.EasternRegions(cfg.n(120000), cfg.Seed)
	opt := cfg.bulkOptions()
	t := Table{
		ID:      "fig14",
		Title:   "Query cost (1% squares) vs dataset size, Eastern prefixes",
		Columns: []string{"n", "T/B"},
		Notes:   "paper: all four trees within ~10% of T/B on TIGER data",
	}
	for _, l := range paperLoaders {
		t.Columns = append(t.Columns, l.String())
	}
	for ri, items := range regions {
		world := geom.ItemsMBR(items)
		queries := workload.Squares(world, 0.01, cfg.Queries, cfg.Seed+int64(ri))
		row := []string{fmt.Sprintf("%d", len(items)), ""}
		var tb float64
		for _, l := range paperLoaders {
			r := buildTree(l, items, opt)
			c := measureQueries(r.tree, queries)
			tb = c.AvgResults / float64(r.tree.Config().Fanout)
			row = append(row, fmtPct(c.Pct))
		}
		row[1] = fmt.Sprintf("%.0f", tb)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig15Size reproduces the left panel of Figure 15: 1%-area square queries
// on size(max_side) data. As rectangles grow, PR and H4 stay near T/B
// while H (extent-blind) and TGS degrade.
func Fig15Size(cfg Config) Table {
	cfg = cfg.normalized()
	n := cfg.n(100000)
	opt := cfg.bulkOptions()
	t := Table{
		ID:      "fig15size",
		Title:   "Query cost on SIZE(max_side), 1% squares (100% = T/B)",
		Columns: []string{"max_side", "T/B"},
		Notes:   "paper: PR,H4 << TGS << H for large rectangles",
	}
	for _, l := range paperLoaders {
		t.Columns = append(t.Columns, l.String())
	}
	for i, ms := range []float64{0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2} {
		items := dataset.Size(n, ms, cfg.Seed+int64(i))
		queries := workload.Squares(geom.NewRect(0, 0, 1, 1), 0.01, cfg.Queries, cfg.Seed+int64(i))
		row := []string{fmt.Sprintf("%g", ms), ""}
		var tb float64
		for _, l := range paperLoaders {
			r := buildTree(l, items, opt)
			c := measureQueries(r.tree, queries)
			tb = c.AvgResults / float64(r.tree.Config().Fanout)
			row = append(row, fmtPct(c.Pct))
		}
		row[1] = fmt.Sprintf("%.0f", tb)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig15Aspect reproduces the middle panel of Figure 15: queries on
// aspect(a) data. With growing aspect ratio PR and H4 stay near optimal
// while TGS and especially H degrade.
func Fig15Aspect(cfg Config) Table {
	cfg = cfg.normalized()
	n := cfg.n(100000)
	opt := cfg.bulkOptions()
	t := Table{
		ID:      "fig15aspect",
		Title:   "Query cost on ASPECT(a), 1% squares (100% = T/B)",
		Columns: []string{"a", "T/B"},
		Notes:   "paper: PR ~ H4 near optimal; H worst, TGS between",
	}
	for _, l := range paperLoaders {
		t.Columns = append(t.Columns, l.String())
	}
	for i, a := range []float64{10, 100, 1000, 10000, 100000} {
		items := dataset.Aspect(n, a, cfg.Seed+int64(i))
		queries := workload.Squares(geom.NewRect(0, 0, 1, 1), 0.01, cfg.Queries, cfg.Seed+int64(i))
		row := []string{fmt.Sprintf("%g", a), ""}
		var tb float64
		for _, l := range paperLoaders {
			r := buildTree(l, items, opt)
			c := measureQueries(r.tree, queries)
			tb = c.AvgResults / float64(r.tree.Config().Fanout)
			row = append(row, fmtPct(c.Pct))
		}
		row[1] = fmt.Sprintf("%.0f", tb)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig15Skewed reproduces the right panel of Figure 15: queries on
// skewed(c) point data with queries skewed the same way. PR is invariant
// (it only compares coordinates within an axis); the others degrade.
func Fig15Skewed(cfg Config) Table {
	cfg = cfg.normalized()
	n := cfg.n(100000)
	opt := cfg.bulkOptions()
	t := Table{
		ID:      "fig15skewed",
		Title:   "Query cost on SKEWED(c), skewed 1% squares (100% = T/B)",
		Columns: []string{"c", "T/B"},
		Notes:   "paper: PR flat across c (order-invariance); others degrade",
	}
	for _, l := range paperLoaders {
		t.Columns = append(t.Columns, l.String())
	}
	for i, c := range []int{1, 3, 5, 7, 9} {
		items := dataset.Skewed(n, c, cfg.Seed+int64(i))
		queries := workload.SkewedSquares(0.01, c, cfg.Queries, cfg.Seed+int64(i))
		row := []string{fmt.Sprintf("%d", c), ""}
		var tb float64
		for _, l := range paperLoaders {
			r := buildTree(l, items, opt)
			qc := measureQueries(r.tree, queries)
			tb = qc.AvgResults / float64(r.tree.Config().Fanout)
			row = append(row, fmtPct(qc.Pct))
		}
		row[1] = fmt.Sprintf("%.0f", tb)
		t.Rows = append(t.Rows, row)
	}
	return t
}
