package experiments

import (
	"fmt"
	"math/rand"

	"prtree/internal/bulk"
	"prtree/internal/dataset"
	"prtree/internal/geom"
	"prtree/internal/logmethod"
	"prtree/internal/rtree"
	"prtree/internal/storage"
	"prtree/internal/workload"
)

// FutureWorkUpdates runs the experiment the paper's Section 4 leaves for
// future work: bulk-load a PR-tree, then apply heuristic update algorithms
// (Guttman quadratic and the R*-tree heuristics) under churn and watch the
// query performance drift, compared against rebuilding from scratch and
// against the logarithmic method that provably keeps the optimal bound.
//
// Each round deletes a random 25% of the live items and inserts fresh
// replacements. The reported number is the paper's query metric (leaf
// blocks read as a percentage of T/B) on fixed 1% window queries.
func FutureWorkUpdates(cfg Config) Table {
	cfg = cfg.normalized()
	n := cfg.n(60000)
	const rounds = 4

	t := Table{
		ID:      "futurework",
		Title:   "Section 4 future work: PR-tree query cost under heuristic updates",
		Columns: []string{"churn rounds", "PR+Guttman", "PR+R*", "PR rebuilt", "log method"},
		Notes:   "25% of items replaced per round; rebuilt = fresh bulk-load of the same live set",
	}

	base := dataset.Eastern(n, cfg.Seed)
	queries := workload.Squares(geom.ItemsMBR(base), 0.01, cfg.Queries, cfg.Seed)
	opt := cfg.bulkOptions()

	// Two dynamically updated trees over the same evolving item set.
	guttman := bulk.FromItems(bulk.LoaderPR,
		storage.NewPager(storage.NewDisk(storage.DefaultBlockSize), -1), base, opt)
	rstarOpt := opt
	rstarOpt.Split = rtree.RStarSplit
	rstar := bulk.FromItems(bulk.LoaderPR,
		storage.NewPager(storage.NewDisk(storage.DefaultBlockSize), -1), base, rstarOpt)
	logm := logmethod.New(
		storage.NewPager(storage.NewDisk(storage.DefaultBlockSize), -1), opt, 0)
	for _, it := range base {
		logm.Insert(it)
	}

	live := make([]geom.Item, len(base))
	copy(live, base)
	rng := rand.New(rand.NewSource(cfg.Seed))
	nextID := uint32(n)

	record := func(round int) {
		rebuilt := bulk.FromItems(bulk.LoaderPR,
			storage.NewPager(storage.NewDisk(storage.DefaultBlockSize), -1), live, opt)
		cg := measureQueries(guttman, queries)
		cr := measureQueries(rstar, queries)
		cb := measureQueries(rebuilt, queries)
		var logLeaves, logResults int
		for _, q := range queries {
			st := logm.Query(q, nil)
			logLeaves += st.LeavesVisited
			logResults += st.Results
		}
		logPct := "inf"
		if logResults > 0 {
			logPct = fmtPct(100 * float64(logLeaves) / (float64(logResults) / 113))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", round),
			fmtPct(cg.Pct), fmtPct(cr.Pct), fmtPct(cb.Pct), logPct,
		})
	}

	record(0)
	for round := 1; round <= rounds; round++ {
		churn := len(live) / 4
		rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
		for _, victim := range live[:churn] {
			guttman.Delete(victim)
			rstar.Delete(victim)
			logm.Delete(victim)
		}
		fresh := dataset.Eastern(churn, cfg.Seed+int64(round))
		for i := range fresh {
			fresh[i].ID = nextID
			nextID++
			guttman.Insert(fresh[i])
			rstar.Insert(fresh[i])
			logm.Insert(fresh[i])
			live[i] = fresh[i]
		}
		record(round)
	}
	return t
}
