package experiments

import (
	"context"
	"fmt"
	"net"
	"os"
	"time"

	"prtree/internal/dataset"
	"prtree/internal/geom"
	"prtree/internal/serve"
	"prtree/internal/workload"
)

// serveClientSweep is the concurrency ladder the serve experiment climbs.
var serveClientSweep = []int{1, 4, 16, 64}

// Serve measures the sharded network server end to end: scatter-gather
// window queries over the binary protocol at increasing client
// concurrency, reporting throughput and the exact latency distribution.
//
// By default it builds a 4-shard Hilbert-partitioned index in a temporary
// directory and serves it in-process on a loopback listener; set
// Config.ServeAddr to drive a remote prtreeserve instead (the workload is
// then synthesized from the server's reported world MBR). Either way the
// generator speaks the real wire protocol through real TCP connections —
// one per client goroutine — so the numbers include framing, scheduling
// and admission overhead, not just tree traversal.
func Serve(cfg Config) Table {
	cfg = cfg.normalized()
	t := Table{
		ID:      "serve",
		Title:   "network serving: scatter-gather window queries vs client concurrency",
		Columns: []string{"clients", "requests", "qps", "mean", "p50", "p95", "p99", "errors", "retries", "hedges"},
	}
	failRow := func(lead string) []string {
		return []string{lead, "-", "-", "-", "-", "-", "-", "1", "-", "-"}
	}

	addr := cfg.ServeAddr
	var world geom.Rect
	var cleanup func()
	if addr == "" {
		local, err := startLocalServer(cfg)
		if err != nil {
			t.Notes = fmt.Sprintf("serve experiment failed to start: %v", err)
			t.Rows = append(t.Rows, failRow("-"))
			return t
		}
		addr, world, cleanup = local.addr, local.world, local.cleanup
		t.Notes = fmt.Sprintf("in-process server, 4 hilbert shards, %s items", fmtInt(uint64(local.items)))
	} else {
		cl, err := serve.Dial(addr)
		if err != nil {
			t.Notes = fmt.Sprintf("serve experiment failed to reach %s: %v", addr, err)
			t.Rows = append(t.Rows, failRow("-"))
			return t
		}
		st, err := cl.Stats()
		cl.Close()
		if err != nil {
			t.Notes = fmt.Sprintf("serve experiment failed to query %s: %v", addr, err)
			t.Rows = append(t.Rows, failRow("-"))
			return t
		}
		world = st.MBR
		t.Notes = fmt.Sprintf("remote server %s, %d shards, %s items", addr, st.Shards, fmtInt(st.Items))
	}
	if cleanup != nil {
		defer cleanup()
	}

	// The paper's 1%-area window workload, reused as the serving load.
	rects := workload.Squares(world, 0.01, cfg.Queries, cfg.Seed+77)
	for _, clients := range serveClientSweep {
		requests := clients * 50
		if requests < 200 {
			requests = 200
		}
		res, err := serve.RunLoad(serve.LoadOptions{
			Addr:     addr,
			Clients:  clients,
			Requests: requests,
			Rects:    rects,
			// The robust client (retries + circuit breaker, no hedging:
			// it would double-count latency samples under full load) is
			// what production callers run, so measure through it.
			Robust: &serve.RobustOptions{},
		})
		if err != nil {
			t.Rows = append(t.Rows, failRow(fmt.Sprintf("%d", clients)))
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", res.Clients),
			fmt.Sprintf("%d", res.Requests),
			fmt.Sprintf("%.0f", res.QPS),
			fmtLatency(res.Mean),
			fmtLatency(res.P50),
			fmtLatency(res.P95),
			fmtLatency(res.P99),
			fmt.Sprintf("%d", res.Errors),
			fmt.Sprintf("%d", res.Retries),
			fmt.Sprintf("%d", res.Hedges),
		})
	}
	return t
}

// localServer is an in-process sharded server the experiment stood up.
type localServer struct {
	addr    string
	world   geom.Rect
	items   int
	cleanup func()
}

// startLocalServer shards a fresh dataset into a temporary directory and
// serves it on a loopback listener. The cleanup function drains the
// server and removes the directory.
func startLocalServer(cfg Config) (*localServer, error) {
	dir, err := os.MkdirTemp("", "prtree-serve-exp-*")
	if err != nil {
		return nil, err
	}
	fail := func(e error) (*localServer, error) {
		os.RemoveAll(dir)
		return nil, e
	}

	items := dataset.Western(cfg.n(60000), cfg.Seed)
	world := geom.ItemsMBR(items)
	if _, err := serve.Build(dir, items, serve.BuildOptions{
		Shards:      4,
		Partition:   serve.PartitionHilbert,
		MemoryItems: cfg.MemoryItems,
		Parallelism: cfg.Workers,
		Layout:      cfg.Layout,
	}); err != nil {
		return fail(err)
	}
	set, err := serve.Open(dir, serve.OpenOptions{})
	if err != nil {
		return fail(err)
	}
	srv := serve.New(serve.Config{Set: set})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		set.Close()
		return fail(err)
	}
	go srv.ServeBinary(lis)
	cleanup := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		set.Close()
		os.RemoveAll(dir)
	}
	return &localServer{addr: lis.Addr().String(), world: world, items: len(items), cleanup: cleanup}, nil
}

func fmtLatency(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
