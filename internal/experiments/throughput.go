package experiments

import (
	"fmt"
	"runtime"
	"time"

	"prtree/internal/bulk"
	"prtree/internal/dataset"
	"prtree/internal/geom"
	"prtree/internal/storage"
	"prtree/internal/workload"
)

// QueryThroughput is the concurrent-serving experiment the paper never ran:
// the Figure 12 workload (PR-loaded Western TIGER-like data, 1%-area square
// windows, internal nodes pinned) executed through Tree.QueryBatch at
// 1, 2, 4, ... workers up to Config.QueryWorkers. Each sweep point drops
// the leaf cache, re-pins the internals and replays the same query batch,
// so the reported aggregate block-I/O must be bit-identical across worker
// counts — the lock-striped pager's single-flight guarantee — while
// queries/sec scales with cores.
func QueryThroughput(cfg Config) Table {
	cfg = cfg.normalized()
	maxWorkers := cfg.QueryWorkers
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}

	items := dataset.Western(cfg.n(120000), cfg.Seed)
	world := geom.ItemsMBR(items)
	disk := storage.NewDisk(storage.DefaultBlockSize)
	// Capacity 0 reproduces the paper's measurement mode: with internals
	// pinned, every leaf visit is one counted block read, so the sweep
	// exercises the pager's concurrent miss path rather than a warm cache.
	pager := storage.NewPager(disk, 0)
	in := storage.NewItemFileFrom(disk, items)
	tree := bulk.Load(bulk.LoaderPR, pager, in, cfg.bulkOptions())

	// A bigger batch than one figure row: replicate the paper's query count
	// across several seeds so each timing interval is long enough to trust.
	batch := make([]geom.Rect, 0, 8*cfg.Queries)
	for s := 0; s < 8; s++ {
		batch = append(batch, workload.Squares(world, 0.01, cfg.Queries, cfg.Seed+int64(s))...)
	}

	t := Table{
		ID:      "throughput",
		Title:   "Concurrent query throughput, Fig12 workload (QueryBatch)",
		Columns: []string{"workers", "queries/sec", "speedup", "aggregate blockIO", "vs serial"},
		Notes:   "block-I/O must be bit-identical at every worker count (single-flight pager)",
	}

	// Sweep powers of two, always ending exactly at maxWorkers so the
	// -qworkers setting is measured even when it is not a power of two.
	sweep := []int{}
	for w := 1; w < maxWorkers; w *= 2 {
		sweep = append(sweep, w)
	}
	sweep = append(sweep, maxWorkers)

	var serialQPS float64
	var serialIO uint64
	for _, w := range sweep {
		pager.DropCache()
		tree.PinInternal()
		disk.ResetStats()
		start := time.Now()
		tree.QueryBatch(batch, w, nil)
		elapsed := time.Since(start)
		io := disk.Stats().Total()
		qps := float64(len(batch)) / elapsed.Seconds()
		if w == 1 {
			serialQPS, serialIO = qps, io
		}
		ioNote := "identical"
		if io != serialIO {
			ioNote = fmt.Sprintf("DIVERGED (%+d)", int64(io)-int64(serialIO))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w),
			fmt.Sprintf("%.0f", qps),
			fmt.Sprintf("%.2fx", qps/serialQPS),
			fmtInt(io),
			ioNote,
		})
	}
	return t
}
