package experiments

import (
	"fmt"
	"testing"
)

// TestCacheSweepGate is the CI gate over the raw-speed I/O tier: at every
// swept capacity, policy and backend the demand block-read count must be
// bit-identical with prefetch on and off (speculative I/O lives in the
// separate PrefetchReads counter), prefetch-on runs must actually issue
// speculative reads, and S3-FIFO must meet or beat LRU's hit rate on the
// hot-set-plus-scan-flood workload it is designed for.
func TestCacheSweepGate(t *testing.T) {
	if testing.Short() {
		t.Skip("cachesweep runs a file-backed workload")
	}
	cfg := Config{Scale: 0.25, Queries: 50}
	pts := cacheSweepRun(cfg)
	if len(pts) == 0 {
		t.Fatal("empty sweep")
	}

	type key struct {
		backend string
		pct     int
		policy  string
	}
	baseReads := map[key]uint64{}
	hitRate := map[key]float64{}
	for _, p := range pts {
		k := key{p.Backend, p.CapPct, p.Policy.String()}
		if !p.Prefetch {
			baseReads[k] = p.DemandReads
			hitRate[k] = p.HitRate
			if p.PrefetchReads != 0 {
				t.Errorf("%v prefetch-off issued %d speculative reads", k, p.PrefetchReads)
			}
		}
	}
	for _, p := range pts {
		if !p.Prefetch {
			continue
		}
		k := key{p.Backend, p.CapPct, p.Policy.String()}
		base, ok := baseReads[k]
		if !ok {
			t.Fatalf("%v has no prefetch-off baseline", k)
		}
		if p.DemandReads != base {
			t.Errorf("%v: demand reads %d with prefetch, %d without — accounting diverged",
				k, p.DemandReads, base)
		}
		if p.PrefetchReads == 0 {
			t.Errorf("%v: prefetch enabled but no speculative reads issued", k)
		}
	}
	for _, pct := range []int{10, 25} {
		lru := hitRate[key{"file", pct, "lru"}]
		s3 := hitRate[key{"file", pct, "s3fifo"}]
		if s3 < lru {
			t.Errorf("capacity %d%%: s3fifo hit rate %.4f below lru %.4f", pct, s3, lru)
		}
		t.Logf("capacity %d%%: hit rate lru=%.4f s3fifo=%.4f", pct, lru, s3)
	}
}

// Example of the rendered table for -v runs and manual inspection.
func TestCacheSweepRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("cachesweep runs a file-backed workload")
	}
	tab := CacheSweep(Config{Scale: 0.1, Queries: 10})
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("row width %d != %d columns", len(row), len(tab.Columns))
		}
		if row[len(row)-1] != "baseline" && row[len(row)-1] != "identical" {
			t.Errorf("demand identity column: %s", fmt.Sprint(row))
		}
	}
}
