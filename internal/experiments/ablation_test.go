package experiments

import (
	"fmt"
	"testing"

	"prtree/internal/dataset"
	"prtree/internal/geom"
	"prtree/internal/rtree"
)

func TestBuildFromPseudoValid(t *testing.T) {
	items := dataset.Uniform(5000, 0.001, 1)
	for _, priority := range []bool{true, false} {
		for _, round := range []bool{true, false} {
			tr := buildFromPseudo(items, 16, priority, round)
			if tr.Len() != len(items) {
				t.Fatalf("priority=%v round=%v: len=%d", priority, round, tr.Len())
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("priority=%v round=%v: %v", priority, round, err)
			}
			if err := rtree.CheckQueryAgainstBruteForce(tr, items,
				geom.NewRect(0.2, 0.2, 0.6, 0.6)); err != nil {
				t.Fatalf("priority=%v round=%v: %v", priority, round, err)
			}
		}
	}
}

func TestAblationPriorityShape(t *testing.T) {
	cfg := tinyCfg()
	cfg.Scale = 0.5
	tb := AblationPriority(cfg)
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows[:2] { // the adversarial probe datasets
		with := parsePct(t, row[1])
		without := parsePct(t, row[2])
		h := parsePct(t, row[3])
		// Both corner-transform kd variants must be an order of magnitude
		// below H on the adversarial data, and the priority leaves cost at
		// most a small constant on these (near-point) inputs.
		if with >= h/3 || without >= h/3 {
			t.Errorf("%s: kd variants (%v%%, %v%%) should be far below H (%v%%)",
				row[0], with, without, h)
		}
		if with > 5*without+5 {
			t.Errorf("%s: priority overhead too large: %v%% vs %v%%", row[0], with, without)
		}
	}
}

func TestAblationRoundToBShape(t *testing.T) {
	tb := AblationRoundToB(tinyCfg())
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	rounded := parsePct(t, tb.Rows[0][1])
	exact := parsePct(t, tb.Rows[1][1])
	if rounded < exact {
		t.Errorf("round-to-B fill %.1f%% should be >= exact-halves %.1f%%", rounded, exact)
	}
	if rounded < 95 {
		t.Errorf("round-to-B fill %.1f%% too low", rounded)
	}
}

func TestAblationCacheShape(t *testing.T) {
	tb := AblationCache(tinyCfg())
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var vals [2][2]float64
	for i, row := range tb.Rows {
		for j := 0; j < 2; j++ {
			var v float64
			if _, err := fmtSscan(row[j+1], &v); err != nil {
				t.Fatal(err)
			}
			vals[i][j] = v
		}
	}
	// Pinned: blocks read == leaf blocks. Uncached: strictly more, but
	// within a small factor (footnote 5: the cache matters little).
	if vals[0][0] != vals[0][1] {
		t.Errorf("pinned reads %.1f != leaves %.1f", vals[0][0], vals[0][1])
	}
	if vals[1][0] < vals[1][1] {
		t.Errorf("uncached reads %.1f below leaf count %.1f", vals[1][0], vals[1][1])
	}
	if vals[1][0] > 3*vals[1][1]+20 {
		t.Errorf("uncached reads %.1f unreasonably above leaves %.1f", vals[1][0], vals[1][1])
	}
}

func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscanf(s, "%f", v)
}
