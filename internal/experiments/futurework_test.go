package experiments

import "testing"

func TestFutureWorkUpdatesShape(t *testing.T) {
	cfg := tinyCfg()
	cfg.Scale = 0.25
	tb := FutureWorkUpdates(cfg)
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Round 0: all static variants identical (same bulk-loaded tree).
	r0 := tb.Rows[0]
	if r0[1] != r0[2] || r0[1] != r0[3] {
		t.Errorf("round 0 should be identical across static variants: %v", r0)
	}
	last := tb.Rows[len(tb.Rows)-1]
	guttman := parsePct(t, last[1])
	rebuilt := parsePct(t, last[3])
	// The paper's §4 concern: heuristic updates erode the bulk-loaded
	// quality. After four churn rounds the updated tree must be measurably
	// worse than a fresh rebuild of the same live set.
	if guttman <= rebuilt {
		t.Errorf("updates should degrade queries: guttman %.0f%% vs rebuilt %.0f%%", guttman, rebuilt)
	}
	// And everything stays finite/sane.
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			if cell == "inf" {
				t.Errorf("infinite cost in %v", row)
			}
		}
	}
}
