package experiments

import (
	"fmt"
	"math"

	"prtree/internal/dataset"
	"prtree/internal/geom"
	"prtree/internal/pseudo"
)

// Table1 reproduces the paper's Table 1: long skinny horizontal queries
// through the CLUSTER dataset. The paper measures H visiting 37%, H4 94%,
// TGS 25% and PR only 1.2% of the R-tree leaves — over an order of
// magnitude better.
func Table1(cfg Config) Table {
	cfg = cfg.normalized()
	n := cfg.n(200000)
	clOpt := dataset.ClusterOptions{}
	items := dataset.Cluster(n, clOpt, cfg.Seed)
	opt := cfg.bulkOptions()
	t := Table{
		ID:      "table1",
		Title:   "CLUSTER dataset with skinny horizontal probes (paper Table 1)",
		Columns: []string{"tree", "avg leaf I/Os", "% of leaves visited", "avg T"},
		Notes:   "paper: H 37%, H4 94%, PR 1.2%, TGS 25% of leaves visited",
	}
	// The paper averages 100 random probes through all clusters.
	queries := make([]geom.Rect, cfg.Queries)
	for i := range queries {
		queries[i] = dataset.ClusterProbe(clOpt, cfg.Seed+int64(i))
	}
	for _, l := range paperLoaders {
		r := buildTree(l, items, opt)
		c := measureQueries(r.tree, queries)
		t.Rows = append(t.Rows, []string{
			l.String(),
			fmt.Sprintf("%.0f", c.AvgLeaves),
			fmt.Sprintf("%.1f%%", 100*c.LeafFrac),
			fmt.Sprintf("%.0f", c.AvgResults),
		})
	}
	return t
}

// Theorem3 demonstrates the lower-bound construction of Section 2.4: on
// the bit-reversal grid, a zero-output line query forces H, H4 and TGS to
// visit essentially every leaf, while the PR-tree visits O(sqrt(N/B)).
func Theorem3(cfg Config) Table {
	cfg = cfg.normalized()
	n := cfg.n(100000)
	b := 113
	items := dataset.WorstCase(n, b)
	opt := cfg.bulkOptions()
	t := Table{
		ID:      "theorem3",
		Title:   "Theorem 3 worst-case grid, zero-output line queries",
		Columns: []string{"tree", "avg leaf I/Os", "% of leaves visited", "sqrt(N/B) ref"},
		Notes:   "paper: H/H4/TGS visit Theta(N/B) leaves, PR O(sqrt(N/B)); all queries report nothing",
	}
	nLeaves := (len(items) + b - 1) / b
	ref := math.Sqrt(float64(len(items)) / float64(b))
	queries := make([]geom.Rect, 0, cfg.Queries)
	for i := 0; i < cfg.Queries; i++ {
		queries = append(queries, dataset.WorstCaseProbe(n, b, i))
	}
	for _, l := range paperLoaders {
		r := buildTree(l, items, opt)
		c := measureQueries(r.tree, queries)
		if c.AvgResults != 0 {
			t.Notes += fmt.Sprintf(" WARNING: %v reported %g results", l, c.AvgResults)
		}
		t.Rows = append(t.Rows, []string{
			l.String(),
			fmt.Sprintf("%.0f", c.AvgLeaves),
			fmt.Sprintf("%.1f%%", 100*c.AvgLeaves/float64(nLeaves)),
			fmt.Sprintf("%.0f", ref),
		})
	}
	return t
}

// Lemma2Check verifies the pseudo-PR-tree query bound empirically: the
// worst zero-output query cost grows like sqrt(N/B), so the normalized
// constant cost/sqrt(N/B) stays bounded as N grows.
func Lemma2Check(cfg Config) Table {
	cfg = cfg.normalized()
	t := Table{
		ID:      "lemma2",
		Title:   "Pseudo-PR-tree worst observed zero-output query vs sqrt(N/B)",
		Columns: []string{"N", "worst blocks", "sqrt(N/B)", "constant"},
		Notes:   "Lemma 2: cost = O(sqrt(N/B) + T/B); the constant must not grow with N",
	}
	b := 113
	for _, base := range []int{20000, 80000, 320000} {
		n := cfg.n(base)
		items := dataset.WorstCase(n, b)
		tr := pseudo.Build(items, b, true)
		cols := len(items) / b
		worst := 0
		for i := 0; i < cfg.Queries; i++ {
			probe := dataset.WorstCaseProbe(n, b, i)
			st := tr.Query(probe, nil)
			if st.Results != 0 {
				t.Notes += " WARNING: probe reported results"
			}
			if v := st.LeavesVisited + st.InternalVisited; v > worst {
				worst = v
			}
		}
		ref := math.Sqrt(float64(cols * b / b))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", len(items)),
			fmt.Sprintf("%d", worst),
			fmt.Sprintf("%.1f", ref),
			fmt.Sprintf("%.2f", float64(worst)/ref),
		})
	}
	return t
}

// Utilization reproduces the paper's space-utilization observation
// (Section 3.3): every bulk-loading method fills leaves to ~100%.
func Utilization(cfg Config) Table {
	cfg = cfg.normalized()
	items := dataset.Eastern(cfg.n(120000), cfg.Seed)
	opt := cfg.bulkOptions()
	t := Table{
		ID:      "utilization",
		Title:   "Space utilization after bulk-loading (Eastern TIGER-like)",
		Columns: []string{"tree", "leaf fill", "nodes", "height"},
		Notes:   "paper: above 99% for all methods (with M ~ 1.9M records; small M adds boundary leaves)",
	}
	for _, l := range paperLoaders {
		r := buildTree(l, items, opt)
		leaf, _ := r.tree.Utilization()
		t.Rows = append(t.Rows, []string{
			l.String(),
			fmt.Sprintf("%.2f%%", 100*leaf),
			fmt.Sprintf("%d", r.tree.Nodes()),
			fmt.Sprintf("%d", r.tree.Height()),
		})
	}
	return t
}
