package experiments

import (
	"strconv"
	"strings"
	"testing"

	"prtree/internal/bulk"
	"prtree/internal/dataset"
	"prtree/internal/geom"
	"prtree/internal/workload"
)

// tinyCfg keeps experiment smoke tests fast.
func tinyCfg() Config {
	return Config{Scale: 0.02, Queries: 10, MemoryItems: 4096, Seed: 7}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad percentage %q: %v", s, err)
	}
	return v
}

func parseThousands(t *testing.T, s string) uint64 {
	t.Helper()
	v, err := strconv.ParseUint(strings.ReplaceAll(s, ",", ""), 10, 64)
	if err != nil {
		t.Fatalf("bad int %q: %v", s, err)
	}
	return v
}

func TestTableRender(t *testing.T) {
	tb := Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "bee"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   "n",
	}
	out := tb.Render()
	for _, want := range []string{"=== x: demo ===", "a", "bee", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFmtHelpers(t *testing.T) {
	if got := fmtInt(1234567); got != "1,234,567" {
		t.Errorf("fmtInt = %q", got)
	}
	if got := fmtInt(999); got != "999" {
		t.Errorf("fmtInt = %q", got)
	}
	if got := fmtInt(1000); got != "1,000" {
		t.Errorf("fmtInt = %q", got)
	}
}

func TestFig9ShapeAndOrdering(t *testing.T) {
	// The I/O ordering H < PR < TGS needs n > M so that PR actually runs
	// its external rounds (at n <= M the PR loader degenerates to a single
	// in-memory pass and is cheaper than H's mandatory sort).
	cfg := tinyCfg()
	cfg.Scale = 0.1 // n = 12000 > MemoryItems = 4096
	tb := Fig9(cfg)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	io := map[string]uint64{}
	for _, row := range tb.Rows {
		io[row[0]] = parseThousands(t, row[3]) // eastern I/O
	}
	// Figure 9 ordering: H <= H4 < PR < TGS (H and H4 are near-identical).
	if !(io["H"] < io["PR"] && io["PR"] < io["TGS"]) {
		t.Errorf("fig9 I/O ordering violated: %v", io)
	}
	if io["TGS"] < 2*io["PR"] {
		t.Errorf("TGS should be far above PR: %v", io)
	}
}

func TestFig10MonotoneInN(t *testing.T) {
	tb := Fig10(tinyCfg())
	for _, row := range tb.Rows {
		prev := uint64(0)
		for _, cell := range row[1:] {
			v := parseThousands(t, cell)
			if v < prev {
				t.Errorf("%s: I/O not monotone in n: %v", row[0], row)
			}
			prev = v
		}
	}
}

func TestFig12AllNearOptimal(t *testing.T) {
	cfg := tinyCfg()
	cfg.Scale = 0.05
	tb := Fig12(cfg)
	for _, row := range tb.Rows {
		var pcts []float64
		for i, cell := range row[2:] {
			pct := parsePct(t, cell)
			// Costs can never beat the reporting lower bound. Absolute
			// levels at tiny scale are dominated by boundary leaves, so
			// the paper's "within 10% of T/B" is checked by the full-scale
			// prbench run, not here.
			if pct < 99 {
				t.Errorf("fig12 %s %s: %v%% below the lower bound", row[0], tb.Columns[i+2], pct)
			}
			pcts = append(pcts, pct)
		}
		// On TIGER-like data all four trees stay in the same regime: no
		// tree an order of magnitude worse than the best.
		min, max := pcts[0], pcts[0]
		for _, p := range pcts {
			if p < min {
				min = p
			}
			if p > max {
				max = p
			}
		}
		if max > 10*min {
			t.Errorf("fig12 %s: spread too wide: %v", row[0], pcts)
		}
	}
}

func TestFig15SizeExtremesFavorExtentAware(t *testing.T) {
	// The extent-aware loaders (H4, and PR at production scale) beat the
	// extent-blind H on large rectangles. The effect needs enough leaves
	// that the per-leaf center span is small against the query side, so
	// this checks a single size(0.2) dataset at n=200k with the two
	// Hilbert loaders only (the full four-way figure at scale is run by
	// cmd/prbench and recorded in EXPERIMENTS.md).
	if testing.Short() {
		t.Skip("needs n=200k")
	}
	items := dataset.Size(200000, 0.2, 7)
	queries := workload.Squares(geom.NewRect(0, 0, 1, 1), 0.01, 20, 8)
	opt := bulk.Options{MemoryItems: 1 << 16}
	h := measureQueries(buildTree(bulk.LoaderHilbert, items, opt).tree, queries)
	h4 := measureQueries(buildTree(bulk.LoaderHilbert4D, items, opt).tree, queries)
	if h4.Pct >= h.Pct {
		t.Errorf("size(0.2): H4 (%.0f%%) should beat H (%.0f%%)", h4.Pct, h.Pct)
	}
}

func TestFig15SkewedPRFlat(t *testing.T) {
	cfg := tinyCfg()
	cfg.Scale = 0.05
	tb := Fig15Skewed(cfg)
	cols := map[string]int{}
	for i, c := range tb.Columns {
		cols[c] = i
	}
	first := parsePct(t, tb.Rows[0][cols["PR"]])
	lastRow := tb.Rows[len(tb.Rows)-1]
	last := parsePct(t, lastRow[cols["PR"]])
	// PR's bulk-loading is order-invariant: cost at c=9 within 40% of c=1.
	if last > first*1.4+10 {
		t.Errorf("PR not flat under skew: %.0f%% -> %.0f%%", first, last)
	}
	// H degrades: at c=9 it must be clearly worse than PR.
	hLast := parsePct(t, lastRow[cols["H"]])
	if hLast <= last {
		t.Errorf("skewed(9): H (%.0f%%) should be worse than PR (%.0f%%)", hLast, last)
	}
}

func TestTable1PRWinsBigOnCluster(t *testing.T) {
	cfg := tinyCfg()
	cfg.Scale = 0.25 // cluster effect needs some size
	tb := Table1(cfg)
	frac := map[string]float64{}
	for _, row := range tb.Rows {
		frac[row[0]] = parsePct(t, row[2])
	}
	// The Hilbert trees collapse on CLUSTER (paper: 37% and 94%; at our
	// scale they saturate near 100%), while PR stays an order of magnitude
	// lower. TGS also does well at small cluster counts, so it is not
	// compared against PR here.
	if frac["PR"] >= frac["H"]/3 || frac["PR"] >= frac["H4"]/3 {
		t.Errorf("PR should be far below the Hilbert trees on CLUSTER: %v", frac)
	}
	if frac["PR"] > 25 {
		t.Errorf("PR visits %.1f%% of leaves on CLUSTER, want small", frac["PR"])
	}
}

func TestTheorem3Shape(t *testing.T) {
	cfg := tinyCfg()
	cfg.Scale = 0.5
	tb := Theorem3(cfg)
	if strings.Contains(tb.Notes, "WARNING") {
		t.Fatalf("probes reported results: %s", tb.Notes)
	}
	frac := map[string]float64{}
	for _, row := range tb.Rows {
		frac[row[0]] = parsePct(t, row[2])
	}
	// H and H4 visit essentially all leaves; PR visits a small fraction.
	if frac["H"] < 60 {
		t.Errorf("H should visit most leaves on the worst case, got %.0f%%", frac["H"])
	}
	if frac["PR"] > frac["H"]/3 {
		t.Errorf("PR (%.0f%%) should be far below H (%.0f%%)", frac["PR"], frac["H"])
	}
}

func TestLemma2ConstantBounded(t *testing.T) {
	cfg := tinyCfg()
	tb := Lemma2Check(cfg)
	if strings.Contains(tb.Notes, "WARNING") {
		t.Fatalf("probes reported results: %s", tb.Notes)
	}
	var consts []float64
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		consts = append(consts, v)
	}
	for _, c := range consts {
		if c > 20 {
			t.Errorf("lemma2 constant %v too large", c)
		}
	}
	// The constant must not blow up with N (allow mild growth from the
	// T=0 additive term).
	if consts[len(consts)-1] > 3*consts[0]+5 {
		t.Errorf("lemma2 constant grows with N: %v", consts)
	}
}

func TestUtilizationTable(t *testing.T) {
	tb := Utilization(tinyCfg())
	for _, row := range tb.Rows {
		fill := parsePct(t, row[1])
		if fill < 90 {
			t.Errorf("%s: leaf fill %.1f%% too low", row[0], fill)
		}
	}
}

func TestMeasureQueriesZeroOutput(t *testing.T) {
	items := dataset.Size(2000, 0.001, 1)
	r := buildTree(bulk.LoaderPR, items, bulk.Options{Fanout: 16, MemoryItems: 4096})
	// A far-away query: zero output, Pct = +Inf handled.
	c := measureQueries(r.tree, []geom.Rect{geom.NewRect(5, 5, 6, 6)})
	if c.AvgResults != 0 {
		t.Fatal("expected zero results")
	}
	if got := fmtPct(c.Pct); got != "inf" {
		t.Errorf("fmtPct(inf) = %q", got)
	}
}

func TestQueryFigureTBPositive(t *testing.T) {
	items := dataset.Eastern(3000, 3)
	qs := workload.Squares(geom.ItemsMBR(items), 0.01, 5, 4)
	r := buildTree(bulk.LoaderHilbert, items, bulk.Options{MemoryItems: 4096})
	c := measureQueries(r.tree, qs)
	if c.AvgResults <= 0 || c.AvgLeaves <= 0 {
		t.Errorf("degenerate measurement: %+v", c)
	}
	if c.Pct < 99 {
		t.Errorf("cost below the reporting lower bound: %+v", c)
	}
}
