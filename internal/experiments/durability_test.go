package experiments

import (
	"strings"
	"testing"
)

func TestWALBuildShape(t *testing.T) {
	tbl := WALBuild(Config{Scale: 0.02, Seed: 11})
	if tbl.ID != "walbuild" || len(tbl.Rows) != 2 {
		t.Fatalf("table %q has %d rows, want walbuild/2", tbl.ID, len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Fatalf("row %v has %d cells, want %d", row, len(row), len(tbl.Columns))
		}
	}
	// The bulk path journals only allocator state; the insert path journals
	// full page images. Its relative WAL overhead must be strictly higher.
	overhead := func(row []string) string { return row[len(row)-1] }
	bulkPct := parsePct(t, overhead(tbl.Rows[0]))
	insPct := parsePct(t, overhead(tbl.Rows[1]))
	if bulkPct >= insPct {
		t.Errorf("bulk WAL overhead %.1f%% not below insert overhead %.1f%%", bulkPct, insPct)
	}
}

func TestFaultSweepRecovery(t *testing.T) {
	tbl := FaultSweep(Config{Scale: 0.02, Seed: 12})
	if tbl.ID != "faults" || len(tbl.Rows) != 4 {
		t.Fatalf("table %q has %d rows, want faults/4", tbl.ID, len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		mode, acked, recovered, reopen := row[0], row[2], row[3], row[4]
		if strings.HasPrefix(reopen, "FAILED") {
			t.Errorf("%s: reopen failed: %s", mode, reopen)
			continue
		}
		if recovered == "-" {
			t.Errorf("%s: recovered count missing (row %v)", mode, row)
			continue
		}
		switch mode {
		case "error", "crash":
			// Honest failure modes: recovery restores exactly what was
			// acked, and the recovered index is sound.
			if recovered != acked {
				t.Errorf("%s: recovered %s inserts, acked %s", mode, recovered, acked)
			}
			if validate := row[5]; validate != "ok" {
				t.Errorf("%s: recovered tree failed validation: %s", mode, validate)
			}
			if scrub := row[6]; scrub != "ok" {
				t.Errorf("%s: recovered file failed scrub: %s", mode, scrub)
			}
		case "stop":
			// The treacherous disk acks commits it dropped; recovery can
			// only restore what actually reached the log.
			if atoiCell(t, recovered) > atoiCell(t, acked) {
				t.Errorf("stop: recovered %s > acked %s", recovered, acked)
			}
			if scrub := row[6]; scrub != "ok" {
				t.Errorf("stop: recovered file failed scrub: %s", scrub)
			}
		case "torn":
			// A torn page is committed with a checksum that covers what was
			// written, so the scrub stays clean by design; whether structural
			// validation flags it depends on whether a later full write healed
			// the page, so the row only has to be well-formed.
		}
	}
}

func atoiCell(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, r := range s {
		if r == ',' {
			continue
		}
		if r < '0' || r > '9' {
			t.Fatalf("bad integer cell %q", s)
		}
		n = n*10 + int(r-'0')
	}
	return n
}
