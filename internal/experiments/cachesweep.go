package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"prtree/internal/bulk"
	"prtree/internal/dataset"
	"prtree/internal/geom"
	"prtree/internal/rtree"
	"prtree/internal/storage"
	"prtree/internal/workload"
)

// CacheSweep measures the raw-speed I/O tier under cache pressure: a
// file-backed Fig12-style tree is served with the pager capacity capped
// far below the index size (10% and 25% of its pages), sweeping the
// eviction policy (lru, s3fifo), the structure-aware prefetcher (off, on)
// and the read path (plain file, mmap). The workload interleaves a hot
// working set — small windows confined to one corner of the world, whose
// leaf pages and ancestors are re-read constantly — with periodic large
// scan windows that flood the cache with one-touch pages: the access
// pattern LRU handles worst and S3-FIFO's probationary queue is built
// for.
//
// Two invariants are gated by TestCacheSweepGate (and CI) on top of the
// headline queries/sec:
//   - demand block reads are bit-identical with prefetch on and off at
//     every capacity, policy and backend — speculative I/O lands in the
//     separate PrefetchReads counter, never in the paper's accounting;
//   - the s3fifo hit rate is at least the lru hit rate on this workload.
func CacheSweep(cfg Config) Table {
	pts := cacheSweepRun(cfg)
	t := Table{
		ID:    "cachesweep",
		Title: "Cache-pressure sweep: eviction policy x prefetch x read path (file backend)",
		Columns: []string{
			"capacity", "backend", "policy", "prefetch", "queries/sec",
			"hit rate", "evictions", "demand reads", "prefetch reads", "demand identity",
		},
		Notes: "hot-set windows interleaved with scan floods; capacity in pages (percent of index); demand reads must be identical prefetch on vs off (speculative I/O is counted separately)",
	}
	for _, p := range pts {
		onOff := "off"
		if p.Prefetch {
			onOff = "on"
		}
		ident := "baseline"
		if p.Prefetch {
			ident = "identical"
			if p.DemandReads != p.BaselineReads {
				ident = fmt.Sprintf("DIVERGED (%+d)", int64(p.DemandReads)-int64(p.BaselineReads))
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d (%d%%)", p.Capacity, p.CapPct),
			p.Backend,
			p.Policy.String(),
			onOff,
			fmt.Sprintf("%.0f", p.QPS),
			fmt.Sprintf("%.1f%%", 100*p.HitRate),
			fmtInt(p.Evictions),
			fmtInt(p.DemandReads),
			fmtInt(p.PrefetchReads),
			ident,
		})
	}
	return t
}

// cachePoint is one sweep configuration's measurement.
type cachePoint struct {
	Backend  string // "file" or "mmap"
	CapPct   int
	Capacity int
	Policy   storage.EvictionPolicy
	Prefetch bool

	QPS           float64
	HitRate       float64
	Evictions     uint64
	DemandReads   uint64
	PrefetchReads uint64
	// BaselineReads is the demand-read count of the matching prefetch-off
	// run (equal to DemandReads for prefetch-off points).
	BaselineReads uint64
}

// cacheSweepWorkload builds the interleaved hot/scan query sequence. The
// hot set lives in the lower-left 25% x 25% corner of the world; every
// round runs hotPerRound tiny windows there and then one large scan
// window placed anywhere, so a policy that lets scans flush the hot
// working set pays on the very next round.
func cacheSweepWorkload(world geom.Rect, rounds int, seed int64) []geom.Rect {
	const hotPerRound = 8
	hotWorld := geom.NewRect(
		world.MinX, world.MinY,
		world.MinX+0.25*world.Width(), world.MinY+0.25*world.Height(),
	)
	hot := workload.Squares(hotWorld, 0.008, rounds*hotPerRound, seed)
	scans := workload.Squares(world, 0.02, rounds, seed+1)
	out := make([]geom.Rect, 0, len(hot)+len(scans))
	for r := 0; r < rounds; r++ {
		out = append(out, hot[r*hotPerRound:(r+1)*hotPerRound]...)
		out = append(out, scans[r])
	}
	return out
}

func cacheSweepRun(cfg Config) []cachePoint {
	cfg = cfg.normalized()
	dir, err := os.MkdirTemp("", "prtree-cachesweep")
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	defer os.RemoveAll(dir)

	fb, err := storage.CreateFile(filepath.Join(dir, "cachesweep.pr"), storage.DefaultBlockSize)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	items := dataset.Western(cfg.n(60000), cfg.Seed)
	var tree *rtree.Tree
	{
		counting := storage.NewCounting(fb)
		pager := storage.NewPager(counting, -1)
		if err := commitTx(counting, &tree, func() {
			tree = bulk.FromItems(bulk.LoaderPR, pager, items, cfg.bulkOptions())
		}); err != nil {
			panic(fmt.Sprintf("experiments: cachesweep build: %v", err))
		}
		if err := counting.Sync(); err != nil {
			panic(fmt.Sprintf("experiments: cachesweep checkpoint: %v", err))
		}
	}
	pages := tree.Nodes()
	world := geom.ItemsMBR(items)
	queries := cacheSweepWorkload(world, 4*cfg.Queries, cfg.Seed)

	// The mmap wrapper shares fb; closing it closes fb too.
	mm, err := storage.NewMmap(fb)
	if err != nil {
		panic(fmt.Sprintf("experiments: cachesweep mmap: %v", err))
	}
	defer mm.Close()

	run := func(dev storage.Backend, capacity int, pol storage.EvictionPolicy, prefetch bool) cachePoint {
		counting := storage.NewCounting(dev)
		pager := storage.NewPagerWith(counting, storage.PagerOptions{
			Capacity: capacity,
			Policy:   pol,
			Prefetch: prefetch,
		})
		defer pager.Close()
		rt, err := rtree.OpenFromMeta(pager, fb.Meta())
		if err != nil {
			panic(fmt.Sprintf("experiments: cachesweep reopen: %v", err))
		}
		start := time.Now()
		for _, q := range queries {
			rt.QueryCount(q)
		}
		elapsed := time.Since(start)
		// Close drains the prefetch queue before returning, so the
		// counters below are settled (Close is idempotent; the deferred
		// one becomes a no-op).
		pager.Close()
		io := counting.Stats()
		cs := pager.CacheStats()
		return cachePoint{
			Capacity:      capacity,
			Policy:        pol,
			Prefetch:      prefetch,
			QPS:           float64(len(queries)) / elapsed.Seconds(),
			HitRate:       cs.HitRatio(),
			Evictions:     cs.Evictions,
			DemandReads:   io.Reads,
			PrefetchReads: io.PrefetchReads,
		}
	}

	var pts []cachePoint
	for _, pct := range []int{10, 25} {
		capacity := pages * pct / 100
		if capacity < 4 {
			capacity = 4
		}
		for _, bk := range []struct {
			name string
			dev  storage.Backend
		}{{"file", fb}, {"mmap", mm}} {
			policies := []storage.EvictionPolicy{storage.EvictLRU, storage.EvictS3FIFO}
			if bk.name == "mmap" {
				// The mmap rows exist to price the zero-copy read path;
				// the policy comparison is covered by the file rows.
				policies = []storage.EvictionPolicy{storage.EvictS3FIFO}
			}
			for _, pol := range policies {
				var baseline uint64
				for _, prefetch := range []bool{false, true} {
					p := run(bk.dev, capacity, pol, prefetch)
					p.Backend = bk.name
					p.CapPct = pct
					if !prefetch {
						baseline = p.DemandReads
					}
					p.BaselineReads = baseline
					pts = append(pts, p)
				}
			}
		}
	}
	return pts
}
