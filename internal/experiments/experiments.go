// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 3) on the simulated disk substrate. Each experiment
// is a function returning a Table whose rows mirror the series the paper
// plots; EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Dataset sizes are scaled down from the paper's 10-16.7 million
// rectangles (Config.Scale multiplies the defaults) so the full suite runs
// on one machine in minutes; the shapes — who wins, by what factor, where
// the crossovers fall — are what the harness is after.
package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"prtree/internal/bulk"
	"prtree/internal/geom"
	"prtree/internal/rtree"
	"prtree/internal/storage"
)

// Config tunes the whole suite.
type Config struct {
	// Scale multiplies default dataset sizes (default 1.0; the defaults
	// correspond to ~120k-rectangle inputs).
	Scale float64
	// Queries is the number of window queries per measurement point
	// (paper: 100).
	Queries int
	// MemoryItems is the bulk-loading memory budget M in records.
	MemoryItems int
	// Workers bounds the bulk-load pipeline's parallelism (0 or 1 =
	// serial). Block-I/O counts — the quantity every figure plots — are
	// identical at any setting; only wall-clock changes.
	Workers int
	// QueryWorkers is the highest worker count the query-throughput
	// experiment sweeps to (0 = GOMAXPROCS). Aggregate block-I/O is
	// identical at every setting; only queries/sec changes.
	QueryWorkers int
	// Layout selects the on-disk page format every experiment builds with
	// (default rtree.LayoutRaw, the paper's exact setup). The LayoutSweep
	// experiment measures both layouts regardless of this setting.
	Layout rtree.Layout
	// Seed drives every generator.
	Seed int64
	// ServeAddr points the serve experiment at an already-running
	// prtreeserve binary-protocol listener instead of the in-process
	// server it builds by default. The workload is synthesized from the
	// remote server's reported world MBR.
	ServeAddr string
}

// bulkOptions returns the loader options every experiment shares.
func (c Config) bulkOptions() bulk.Options {
	return bulk.Options{MemoryItems: c.MemoryItems, Parallelism: c.Workers, Layout: c.Layout}
}

func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Queries <= 0 {
		c.Queries = 100
	}
	if c.MemoryItems <= 0 {
		// Smaller than the library default so that even the smallest
		// dataset in the suite exceeds M and every loader runs its
		// external path — otherwise the PR loader's in-memory shortcut
		// puts a discontinuity into the Figure 10 scaling series.
		c.MemoryItems = 1 << 14
	}
	if c.Seed == 0 {
		c.Seed = 2004 // SIGMOD 2004
	}
	return c
}

func (c Config) n(base int) int {
	n := int(float64(base) * c.Scale)
	if n < 1000 {
		n = 1000
	}
	return n
}

// Table is one experiment's result in paper-style rows.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// buildResult captures one bulk-load run.
type buildResult struct {
	tree *rtree.Tree
	io   storage.Stats
	dur  time.Duration
}

// buildTree bulk-loads items with the given loader on a fresh disk,
// measuring the build's block I/O and wall time. Writing the input file is
// excluded from the measurement (the paper's inputs pre-exist on disk).
func buildTree(l bulk.Loader, items []geom.Item, opt bulk.Options) buildResult {
	disk := storage.NewDisk(storage.DefaultBlockSize)
	pager := storage.NewPager(disk, -1)
	in := storage.NewItemFileFrom(disk, items)
	disk.ResetStats()
	start := time.Now()
	tree := bulk.Load(l, pager, in, opt)
	dur := time.Since(start)
	return buildResult{tree: tree, io: disk.Stats(), dur: dur}
}

// queryCost measures a query set like the paper: internal nodes are
// cached, so the reported cost is leaf blocks read; the headline number is
// 100 * (blocks read) / (T/B), the percentage above the reporting lower
// bound.
type queryCost struct {
	AvgLeaves  float64 // leaf blocks read per query
	AvgResults float64 // T per query
	Pct        float64 // 100 * totalLeaves / total(T/B)
	LeafFrac   float64 // fraction of all leaves visited (Table 1 metric)
}

func measureQueries(tree *rtree.Tree, queries []geom.Rect) queryCost {
	fanout := tree.Config().Fanout
	var totalLeaves, totalResults int
	for _, q := range queries {
		st := tree.QueryCount(q)
		totalLeaves += st.LeavesVisited
		totalResults += st.Results
	}
	nq := float64(len(queries))
	out := queryCost{
		AvgLeaves:  float64(totalLeaves) / nq,
		AvgResults: float64(totalResults) / nq,
	}
	if totalResults > 0 {
		out.Pct = 100 * float64(totalLeaves) / (float64(totalResults) / float64(fanout))
	} else {
		out.Pct = math.Inf(1)
	}
	totalLeafNodes := 0
	tree.Walk(func(_ storage.PageID, _ int, isLeaf bool, _ []geom.Item) {
		if isLeaf {
			totalLeafNodes++
		}
	})
	if totalLeafNodes > 0 {
		out.LeafFrac = out.AvgLeaves / float64(totalLeafNodes)
	}
	return out
}

func fmtInt(v uint64) string {
	s := fmt.Sprintf("%d", v)
	// Insert thousands separators for readability.
	n := len(s)
	if n <= 3 {
		return s
	}
	var b strings.Builder
	pre := n % 3
	if pre > 0 {
		b.WriteString(s[:pre])
	}
	for i := pre; i < n; i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	return b.String()
}

func fmtPct(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.1f%%", v)
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2fs", d.Seconds())
}

// paperLoaders is the comparison set of the paper in presentation order.
var paperLoaders = []bulk.Loader{bulk.LoaderHilbert, bulk.LoaderHilbert4D, bulk.LoaderPR, bulk.LoaderTGS}

// All runs every experiment and returns the tables in paper order.
func All(cfg Config) []Table {
	return []Table{
		Fig9(cfg),
		Fig10(cfg),
		Fig11(cfg),
		Fig12(cfg),
		Fig13(cfg),
		Fig14(cfg),
		Fig15Size(cfg),
		Fig15Aspect(cfg),
		Fig15Skewed(cfg),
		Table1(cfg),
		Theorem3(cfg),
		Lemma2Check(cfg),
		Utilization(cfg),
		AblationPriority(cfg),
		AblationRoundToB(cfg),
		AblationCache(cfg),
		FutureWorkUpdates(cfg),
		QueryThroughput(cfg),
		LayoutSweep(cfg),
		CacheSweep(cfg),
	}
}
