package experiments

import "testing"

// TestCompactionResultIdentity runs the online-compaction benchmark at a
// small scale and checks its own invariant column: the sync and
// background runs must report identical query-result fingerprints, and
// the background run must actually merge in the background.
func TestCompactionResultIdentity(t *testing.T) {
	tab := Compaction(Config{Scale: 0.1, Queries: 20})
	if tab.ID != "compact" {
		t.Fatalf("id = %q", tab.ID)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (sync, background)", len(tab.Rows))
	}
	crcCol := len(tab.Columns) - 1
	if tab.Rows[0][crcCol] != tab.Rows[1][crcCol] {
		t.Errorf("result crc diverges: sync %s, background %s",
			tab.Rows[0][crcCol], tab.Rows[1][crcCol])
	}
	if merges := tab.Rows[1][5]; merges == "0" {
		t.Errorf("background row reports no completed merges")
	}
}
