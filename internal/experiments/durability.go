package experiments

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"prtree/internal/bulk"
	"prtree/internal/dataset"
	"prtree/internal/geom"
	"prtree/internal/rtree"
	"prtree/internal/storage"
)

// The durability experiments run on the real file backend (the only one
// with a write-ahead log), not the simulated disk: WALBuild prices the
// log on the build path, FaultSweep drives the recovery machinery through
// every injected failure mode.

// commitTx brackets one mutation in a backend transaction exactly the way
// the public facade does: Begin, mutate, stage metadata, Commit.
func commitTx(b storage.Backend, tr **rtree.Tree, fn func()) error {
	tx := storage.EnsureTransactional(b)
	tx.Begin()
	done := false
	defer func() {
		if !done {
			tx.Rollback()
		}
	}()
	fn()
	b.SetMeta((*tr).EncodeMeta())
	done = true
	if err := tx.Commit(); err != nil {
		tx.Rollback()
		return err
	}
	return nil
}

// WALBuild measures what the write-ahead log costs on the two write
// paths: a bulk load, whose fresh pages bypass the log entirely (one
// state record and one fsync per transaction), and single-item inserts,
// whose overwrites of committed-live pages are journaled as full block
// images. Overhead is log bytes relative to page bytes written.
func WALBuild(cfg Config) Table {
	cfg = cfg.normalized()
	dir, err := os.MkdirTemp("", "prtree-walbuild")
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	defer os.RemoveAll(dir)

	fb, err := storage.CreateFile(filepath.Join(dir, "walbuild.pr"), storage.DefaultBlockSize)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	defer fb.Close()
	counting := storage.NewCounting(fb)
	pager := storage.NewPager(counting, 0)

	items := dataset.Western(cfg.n(60000), cfg.Seed)
	const inserts = 200

	t := Table{
		ID:    "walbuild",
		Title: "Write-ahead-log overhead on the durable build path (file backend)",
		Columns: []string{
			"workload", "items", "txs", "page writes", "page KB", "WAL records", "WAL KB", "WAL overhead",
		},
		Notes: "overhead = WAL bytes / page bytes written; bulk loads journal only allocator state (fresh pages go direct, one fsync), per-insert commits journal full images of every live page they touch",
	}

	row := func(name string, items, txs int, writes, walRecords, walBytes uint64) {
		pageBytes := writes * storage.DefaultBlockSize
		t.Rows = append(t.Rows, []string{
			name, fmtInt(uint64(items)), fmtInt(uint64(txs)),
			fmtInt(writes), fmtInt(pageBytes / 1024),
			fmtInt(walRecords), fmtInt(walBytes / 1024),
			fmt.Sprintf("%.1f%%", 100*float64(walBytes)/float64(pageBytes)),
		})
	}

	// Bulk load: one transaction, then a checkpoint.
	var tree *rtree.Tree
	counting.ResetStats()
	w0 := fb.WALStats()
	if err := commitTx(counting, &tree, func() {
		tree = bulk.FromItems(bulk.LoaderPR, pager, items, cfg.bulkOptions())
	}); err != nil {
		panic(fmt.Sprintf("experiments: bulk commit: %v", err))
	}
	w1 := fb.WALStats()
	row("bulk load (1 tx)", len(items), 1,
		counting.Stats().Writes, uint64(w1.Records-w0.Records), uint64(w1.Bytes-w0.Bytes))
	if err := counting.Sync(); err != nil {
		panic(fmt.Sprintf("experiments: checkpoint: %v", err))
	}

	// Single-item inserts: one committed transaction each.
	extra := dataset.Western(inserts, cfg.Seed+1)
	counting.ResetStats()
	w0 = fb.WALStats()
	for i, it := range extra {
		it.ID = uint32(1<<30 + i)
		if err := commitTx(counting, &tree, func() { tree.Insert(it) }); err != nil {
			panic(fmt.Sprintf("experiments: insert commit: %v", err))
		}
	}
	w1 = fb.WALStats()
	row(fmt.Sprintf("inserts (%d txs)", inserts), inserts, inserts,
		counting.Stats().Writes, uint64(w1.Records-w0.Records), uint64(w1.Bytes-w0.Bytes))
	return t
}

// safeCall runs fn, converting a panic into an error, so torture results
// (a torn page that fails structural decoding, say) land in a table row
// instead of killing the harness.
func safeCall(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return fn()
}

// FaultSweep drives a file-backed tree through every Faulty mode: build a
// committed base, arm the fault, insert until the backend errors, dies or
// silently stops persisting, then model process death (Abandon), reopen
// and report what recovery restored. The invariant on the honest modes
// (error, crash): every acked insert is recovered and nothing torn
// survives. The stop mode is the treacherous disk — it acks commits it
// dropped, so recovery honestly reports fewer.
func FaultSweep(cfg Config) Table {
	cfg = cfg.normalized()
	base := dataset.Western(cfg.n(20000), cfg.Seed)

	t := Table{
		ID:    "faults",
		Title: "Fault-injected write paths and what recovery restores (file backend)",
		Columns: []string{
			"fault", "workload outcome", "acked inserts", "recovered", "reopen", "validate", "scrub",
		},
		Notes: "fault armed 25 counted ops into the insert workload; the process then dies without checkpointing, so every reopen replays the log; a torn write is an application-level short write the checksum cannot see (it covers what was written) — structural validation is the net that catches it",
	}

	for _, mode := range []storage.FaultMode{
		storage.FaultError, storage.FaultTorn, storage.FaultCrash, storage.FaultStop,
	} {
		t.Rows = append(t.Rows, faultRow(cfg, mode, base))
	}
	return t
}

func faultRow(cfg Config, mode storage.FaultMode, base []geom.Item) []string {
	dir, err := os.MkdirTemp("", "prtree-faults")
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "victim.pr")

	fb, err := storage.CreateFile(path, storage.DefaultBlockSize)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	faulty := storage.NewFaulty(fb, mode, 0) // disarmed during the base build
	pager := storage.NewPager(faulty, 0)

	var tree *rtree.Tree
	if err := commitTx(faulty, &tree, func() {
		tree = bulk.FromItems(bulk.LoaderPR, pager, base, cfg.bulkOptions())
	}); err != nil {
		panic(fmt.Sprintf("experiments: base build: %v", err))
	}
	if err := faulty.Sync(); err != nil {
		panic(fmt.Sprintf("experiments: base checkpoint: %v", err))
	}

	const inserts = 40
	faulty.Arm(25)
	acked := 0
	outcome := "completed"
	extra := dataset.Western(inserts, cfg.Seed+2)
	for i := range extra {
		extra[i].ID = uint32(1<<30 + i)
		err := safeCall(func() error {
			it := extra[i]
			return commitTx(faulty, &tree, func() { tree.Insert(it) })
		})
		if err != nil {
			if errors.Is(err, storage.ErrInjectedFault) {
				outcome = fmt.Sprintf("fault surfaced at insert %d", i+1)
			} else {
				outcome = err.Error()
			}
			break
		}
		acked++
	}
	fb.Abandon() // the process dies; no checkpoint

	re, err := storage.OpenFile(path, 0)
	if err != nil {
		return []string{mode.String(), outcome, fmtInt(uint64(acked)), "-",
			fmt.Sprintf("FAILED: %v", err), "-", "-"}
	}
	defer re.Abandon()
	reopen := "clean"
	if ri := re.RecoveryInfo(); ri != nil {
		reopen = fmt.Sprintf("recovered (%d txs replayed)", ri.ReplayedTxs)
	}
	recovered := "-"
	validate := "ok"
	if err := safeCall(func() error {
		rt, err := rtree.OpenFromMeta(storage.NewPager(re, 0), re.Meta())
		if err != nil {
			return err
		}
		recovered = fmtInt(uint64(rt.Len() - len(base)))
		return rt.Validate()
	}); err != nil {
		validate = err.Error()
	}
	scrub := "ok"
	if err := safeCall(re.Fsck); err != nil {
		scrub = err.Error()
	}
	return []string{mode.String(), outcome, fmtInt(uint64(acked)), recovered, reopen, validate, scrub}
}
