package experiments

import (
	"strings"
	"testing"

	"prtree/internal/bulk"
	"prtree/internal/dataset"
	"prtree/internal/geom"
	"prtree/internal/rtree"
	"prtree/internal/workload"
)

// TestLayoutFig12Gate is the CI layout gate: one Figure 12 query workload
// (1% squares on snapped Western data) under both layouts, for every
// loader. It FAILS if the compressed layout's block I/O is not strictly
// lower than raw, or if the result sets diverge.
func TestLayoutFig12Gate(t *testing.T) {
	cfg := Config{Scale: 0.25, Queries: 25}.normalized()
	items := dataset.Snap(dataset.Western(cfg.n(120000), cfg.Seed), snapBits)
	world := geom.ItemsMBR(items)
	queries := workload.Squares(world, 0.01, cfg.Queries, cfg.Seed)

	for _, l := range paperLoaders {
		opt := cfg.bulkOptions()
		opt.Layout = rtree.LayoutRaw
		raw := measureLayout(l, items, opt, queries)
		opt.Layout = rtree.LayoutCompressed
		comp := measureLayout(l, items, opt, queries)
		if comp.QueryIO >= raw.QueryIO {
			t.Errorf("%s: compressed query block I/O %d not strictly below raw %d",
				l, comp.QueryIO, raw.QueryIO)
		}
		if comp.Results != raw.Results || comp.ResultSum != raw.ResultSum {
			t.Errorf("%s: results diverged between layouts: raw (%d, %d), compressed (%d, %d)",
				l, raw.Results, raw.ResultSum, comp.Results, comp.ResultSum)
		}
		if comp.Fanout != rtree.LayoutCompressed.MaxFanout(4096) {
			t.Errorf("%s: compressed fanout %d, want %d", l, comp.Fanout, rtree.LayoutCompressed.MaxFanout(4096))
		}
	}
}

// TestLayoutSweepTable sanity-checks the prbench table: every loader gets
// a raw and a compressed row, results are flagged identical, and the
// aggregate row exists.
func TestLayoutSweepTable(t *testing.T) {
	tab := LayoutSweep(Config{Scale: 0.1, Queries: 10})
	if tab.ID != "layout" {
		t.Fatalf("table id %q", tab.ID)
	}
	if want := 2*len(paperLoaders) + 1; len(tab.Rows) != want {
		t.Fatalf("%d rows, want %d", len(tab.Rows), want)
	}
	for _, row := range tab.Rows[:len(tab.Rows)-1] {
		if row[1] == "compressed" && !strings.Contains(row[len(row)-1], "identical results") {
			t.Errorf("loader %s: %s", row[0], row[len(row)-1])
		}
	}
}

// TestFiguresRunUnderCompressedLayout replays a small Fig12 under
// Config.Layout = compressed end to end (the prbench -layout path).
func TestFiguresRunUnderCompressedLayout(t *testing.T) {
	tab := Fig12(Config{Scale: 0.05, Queries: 5, Layout: rtree.LayoutCompressed})
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
}

// TestMeasureLayoutCountsLeafIO pins the measurement mode: with internals
// pinned and no cache, query I/O equals leaf visits.
func TestMeasureLayoutCountsLeafIO(t *testing.T) {
	items := dataset.Snap(dataset.Western(8000, 3), snapBits)
	world := geom.ItemsMBR(items)
	queries := workload.Squares(world, 0.01, 10, 4)
	res := measureLayout(bulk.LoaderPR, items, bulk.Options{MemoryItems: 1 << 14}, queries)
	if res.QueryIO == 0 || res.Results == 0 {
		t.Fatalf("empty measurement: %+v", res)
	}
	if res.BuildIO == 0 || res.Pages == 0 {
		t.Fatalf("missing build stats: %+v", res)
	}
}
