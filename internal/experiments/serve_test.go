package experiments

import (
	"strconv"
	"testing"
)

// TestServe runs the serving experiment end to end at a small scale: an
// in-process sharded server, real TCP, a reduced client sweep.
func TestServe(t *testing.T) {
	old := serveClientSweep
	serveClientSweep = []int{1, 2}
	defer func() { serveClientSweep = old }()

	table := Serve(Config{Scale: 0.05, Queries: 8})
	if table.ID != "serve" {
		t.Fatalf("table ID %q", table.ID)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("got %d rows, want 2: %+v", len(table.Rows), table.Rows)
	}
	errCol := -1
	for i, c := range table.Columns {
		if c == "errors" {
			errCol = i
		}
	}
	if errCol < 0 {
		t.Fatalf("no errors column in %v", table.Columns)
	}
	for _, row := range table.Rows {
		if len(row) != len(table.Columns) {
			t.Fatalf("ragged row %v", row)
		}
		n, err := strconv.Atoi(row[errCol])
		if err != nil || n != 0 {
			t.Fatalf("serve row reported errors: %v", row)
		}
		if qps, err := strconv.ParseFloat(row[2], 64); err != nil || qps <= 0 {
			t.Fatalf("bad qps in row %v", row)
		}
	}
}
