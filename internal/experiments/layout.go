package experiments

import (
	"fmt"

	"prtree/internal/bulk"
	"prtree/internal/dataset"
	"prtree/internal/geom"
	"prtree/internal/rtree"
	"prtree/internal/storage"
	"prtree/internal/workload"
)

// snapBits is the coordinate grid of the layout experiments: 2^-16 of the
// unit square — the same 16-bit-per-dimension grid the Hilbert loaders
// quantize to, standing in for TIGER/Line's integer coordinates. A leaf
// quantizes losslessly whenever its extent is at most 65535 grid cells, so
// on a 2^16 grid effectively every leaf (including the PR-tree's
// world-spanning priority leaves) compresses and the full fanout win shows
// up at the leaf level where query I/O is paid; finer-grained data
// degrades gracefully, page by page, to raw leaves.
const snapBits = 16

// fig12Areas is the query-area sweep of Figure 12.
var fig12Areas = []float64{0.0025, 0.005, 0.0075, 0.01, 0.0125, 0.015, 0.0175, 0.02}

// layoutResult aggregates one (loader, layout) measurement.
type layoutResult struct {
	Fanout    int
	BuildIO   uint64
	Pages     int
	QueryIO   uint64 // leaf blocks fetched across the whole Fig12 sweep
	Results   uint64
	ResultSum uint64 // order-independent checksum (sum of result IDs)
	LeafUtil  float64
}

// measureLayout builds items with one loader under one layout and replays
// the Figure 12 query sweep in the paper's measurement mode: internal
// nodes pinned, no leaf cache, so query I/O is exactly the leaf blocks
// fetched from the simulated disk.
func measureLayout(l bulk.Loader, items []geom.Item, opt bulk.Options, queries []geom.Rect) layoutResult {
	disk := storage.NewDisk(storage.DefaultBlockSize)
	pager := storage.NewPager(disk, 0)
	in := storage.NewItemFileFrom(disk, items)
	disk.ResetStats()
	tree := bulk.Load(l, pager, in, opt)
	out := layoutResult{
		Fanout:  tree.Config().Fanout,
		BuildIO: disk.Stats().Total(),
		Pages:   tree.Nodes(),
	}
	out.LeafUtil, _ = tree.Utilization()
	tree.PinInternal()
	disk.ResetStats()
	for _, q := range queries {
		tree.Query(q, func(it geom.Item) bool {
			out.Results++
			out.ResultSum += uint64(it.ID)
			return true
		})
	}
	out.QueryIO = disk.Stats().Total()
	return out
}

// LayoutSweep reproduces the Figure 9 (bulk-loading I/O) and Figure 12
// (query I/O vs query size) measurements under both page layouts on
// grid-snapped Western TIGER-like data, reporting the block-I/O reduction
// the compressed layout buys per loader. Result counts and an
// order-independent checksum are compared across layouts; any divergence
// is flagged in the row, since the compressed layout must not change what
// a query returns.
func LayoutSweep(cfg Config) Table {
	cfg = cfg.normalized()
	items := dataset.Snap(dataset.Western(cfg.n(120000), cfg.Seed), snapBits)
	world := geom.ItemsMBR(items)
	queries := make([]geom.Rect, 0, len(fig12Areas)*cfg.Queries)
	for qi, area := range fig12Areas {
		queries = append(queries, workload.Squares(world, area, cfg.Queries, cfg.Seed+int64(qi))...)
	}

	t := Table{
		ID:    "layout",
		Title: "Raw vs compressed page layout, Fig9 build I/O + Fig12 query sweep (snapped Western data)",
		Columns: []string{
			"tree", "layout", "fanout", "build I/O", "pages", "query I/O", "leaf util", "query I/O vs raw",
		},
		Notes: "entries: raw 36 B (fanout 113) vs compressed 12 B (fanout 338) at 4 KB; query I/O = leaf blocks fetched over the whole Fig12 area sweep, internals pinned",
	}

	var totalRaw, totalComp uint64
	for _, l := range paperLoaders {
		opt := cfg.bulkOptions()
		opt.Layout = rtree.LayoutRaw
		raw := measureLayout(l, items, opt, queries)
		opt.Layout = rtree.LayoutCompressed
		comp := measureLayout(l, items, opt, queries)
		totalRaw += raw.QueryIO
		totalComp += comp.QueryIO

		equal := "identical results"
		if raw.Results != comp.Results || raw.ResultSum != comp.ResultSum {
			equal = "RESULTS DIVERGED"
		}
		t.Rows = append(t.Rows, []string{
			l.String(), "raw", fmt.Sprintf("%d", raw.Fanout),
			fmtInt(raw.BuildIO), fmt.Sprintf("%d", raw.Pages), fmtInt(raw.QueryIO),
			fmt.Sprintf("%.2f", raw.LeafUtil), "1.00x",
		})
		t.Rows = append(t.Rows, []string{
			l.String(), "compressed", fmt.Sprintf("%d", comp.Fanout),
			fmtInt(comp.BuildIO), fmt.Sprintf("%d", comp.Pages), fmtInt(comp.QueryIO),
			fmt.Sprintf("%.2f", comp.LeafUtil),
			fmt.Sprintf("%.2fx lower (%s)", ratio(raw.QueryIO, comp.QueryIO), equal),
		})
	}
	t.Rows = append(t.Rows, []string{
		"all", "compressed", "", "", "", "",
		"", fmt.Sprintf("%.2fx lower aggregate", ratio(totalRaw, totalComp)),
	})
	return t
}

func ratio(raw, comp uint64) float64 {
	if comp == 0 {
		return 0
	}
	return float64(raw) / float64(comp)
}
