package experiments

import (
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"prtree"
	"prtree/internal/dataset"
	"prtree/internal/geom"
	"prtree/internal/workload"
)

// Compaction measures what the online-compaction subsystem buys: the
// dynamic index's insert-stall distribution with logarithmic-method
// merges inline (every base-th insert pays a level rebuild, the top one
// O(N)) versus with background compaction (inserts append to the buffer
// and the merge runs off to the side). Both runs then answer the same
// window queries; the result fingerprints must match exactly — background
// compaction must be invisible to queries.
//
// The background run uses an effectively unbounded merge buffer so the
// measurement isolates the structural insert-path latency (the production
// default bounds the buffer and converts overload into backpressure,
// which would show up here as merge-length waits).
func Compaction(cfg Config) Table {
	cfg = cfg.normalized()
	n := cfg.n(40000)

	t := Table{
		ID:    "compact",
		Title: "Online compaction: insert stalls and query latency, inline vs background merges",
		Columns: []string{
			"mode", "inserts", "stall max ms", "stall p99 ms",
			"query p99 ms", "merges", "write amp", "results crc",
		},
		Notes: "same item set and queries; results crc must match — background merges are invisible to queries",
	}

	items := dataset.Eastern(n, cfg.Seed)
	queries := workload.Squares(geom.ItemsMBR(items), 0.01, cfg.Queries, cfg.Seed)

	for _, background := range []bool{false, true} {
		mode := "sync"
		if background {
			mode = "background"
		}
		maxStall, p99Stall, qp99, st, crc := compactionRun(items, queries, background)
		t.Rows = append(t.Rows, []string{
			mode,
			fmtInt(uint64(n)),
			fmt.Sprintf("%.3f", maxStall.Seconds()*1e3),
			fmt.Sprintf("%.3f", p99Stall.Seconds()*1e3),
			fmt.Sprintf("%.3f", qp99.Seconds()*1e3),
			fmt.Sprintf("%d", st.MergesCompleted),
			fmt.Sprintf("%.2f", st.WriteAmplification),
			fmt.Sprintf("%08x", crc),
		})
	}
	return t
}

// compactionRun loads items into a fresh dynamic index, recording
// per-insert latency, then waits for quiescence and measures per-query
// latency plus a canonical fingerprint of every query's result set.
func compactionRun(items []geom.Item, queries []geom.Rect, background bool) (maxStall, p99Stall, qp99 time.Duration, st prtree.CompactionStats, crc uint32) {
	opts := &prtree.Options{BackgroundCompaction: background}
	if background {
		// Isolate insert-path latency: never convert merge lag into
		// backpressure during the measured load.
		opts.CompactionMaxBuffer = len(items) + 1
	}
	d := prtree.NewDynamic(opts)
	defer d.Close()

	stalls := make([]time.Duration, len(items))
	for i, it := range items {
		start := time.Now()
		d.Insert(it)
		stalls[i] = time.Since(start)
	}

	// Quiesce: let the background supervisor drain the queued merges so
	// both modes answer queries from a settled structure.
	if background {
		deadline := time.Now().Add(2 * time.Minute)
		for {
			st = d.CompactionStats()
			settled := d.BufferLen() < d.Base() &&
				st.MergesStarted == st.MergesCompleted+st.MergesAborted
			if settled || time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	st = d.CompactionStats()

	qtimes := make([]time.Duration, len(queries))
	h := crc32.NewIEEE()
	for i, q := range queries {
		start := time.Now()
		res := d.Search(q)
		qtimes[i] = time.Since(start)
		sort.Slice(res, func(a, b int) bool { return res[a].ID < res[b].ID })
		for _, it := range res {
			fmt.Fprintf(h, "%d,%v;", it.ID, it.Rect)
		}
		fmt.Fprint(h, "|")
	}
	return durMax(stalls), durPercentile(stalls, 0.99), durPercentile(qtimes, 0.99), st, h.Sum32()
}

func durMax(ds []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

func durPercentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
