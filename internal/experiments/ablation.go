package experiments

import (
	"fmt"

	"prtree/internal/bulk"
	"prtree/internal/dataset"
	"prtree/internal/geom"
	"prtree/internal/pseudo"
	"prtree/internal/rtree"
	"prtree/internal/storage"
	"prtree/internal/workload"
)

// buildFromPseudo assembles a real R-tree whose every level is the leaf
// set of an in-memory pseudo-tree over the previous level — the PR-tree
// construction — with the priority leaves and round-to-B refinements
// switchable for ablation.
func buildFromPseudo(items []geom.Item, fanout int, priority, roundToB bool) *rtree.Tree {
	disk := storage.NewDisk(storage.DefaultBlockSize)
	b := rtree.NewBuilder(storage.NewPager(disk, -1), rtree.Config{Fanout: fanout})
	fanout = b.Fanout()
	build := pseudo.Build
	if !priority {
		build = pseudo.BuildKDOnly
	}

	level := make([]rtree.ChildEntry, 0)
	work := make([]geom.Item, len(items))
	copy(work, items)
	for _, lg := range build(work, fanout, roundToB).Leaves() {
		level = append(level, b.WriteLeaf(lg.Items))
	}
	height := 1
	for len(level) > 1 {
		if len(level) <= fanout {
			return b.Finish(b.WriteInternal(level), height+1)
		}
		entries := make([]geom.Item, len(level))
		for i, e := range level {
			entries[i] = geom.Item{Rect: e.Rect, ID: uint32(e.Page)}
		}
		next := level[:0:0]
		for _, lg := range build(entries, fanout, roundToB).Leaves() {
			children := make([]rtree.ChildEntry, len(lg.Items))
			for i, it := range lg.Items {
				children[i] = rtree.ChildEntry{Rect: it.Rect, Page: storage.PageID(it.ID)}
			}
			next = append(next, b.WriteInternal(children))
		}
		level = next
		height++
	}
	return b.Finish(level[0], height)
}

// AblationPriority isolates the paper's central design choice: the same
// corner-transform kd construction with and without priority leaves, on
// the adversarial probe datasets and a high-aspect rectangle workload.
//
// The measured finding (recorded in EXPERIMENTS.md): the order-of-magnitude
// robustness against the adversarial inputs comes from the corner-transform
// kd partition itself — the kd-only variant matches or slightly beats the
// full PR-tree at laptop scale, because on (near-)point data a kd-tree is
// already worst-case optimal (the paper's own remark about kdB-trees). The
// priority leaves cost a small constant here; what they buy is the *proof*:
// Lemma 2's charging argument, and with it the guarantee for arbitrary
// rectangle inputs, needs them.
func AblationPriority(cfg Config) Table {
	cfg = cfg.normalized()
	t := Table{
		ID:      "ablation-priority",
		Title:   "Ablation: PR-tree with vs without priority leaves",
		Columns: []string{"dataset", "with priority", "kd only", "H (reference)"},
		Notes:   "% of leaves visited; both kd variants stay an order of magnitude below H — see EXPERIMENTS.md for the interpretation",
	}
	type probeSet struct {
		name    string
		items   []geom.Item
		queries []geom.Rect
	}
	n := cfg.n(100000)
	cl := dataset.ClusterOptions{}
	sets := []probeSet{
		{name: "worstcase", items: dataset.WorstCase(n, 113)},
		{name: "cluster", items: dataset.Cluster(n, cl, cfg.Seed)},
		{
			name:    "aspect(1e4)",
			items:   dataset.Aspect(n, 1e4, cfg.Seed),
			queries: workload.Squares(geom.NewRect(0, 0, 1, 1), 0.01, cfg.Queries, cfg.Seed),
		},
	}
	for i := 0; i < cfg.Queries; i++ {
		sets[0].queries = append(sets[0].queries, dataset.WorstCaseProbe(n, 113, i))
		sets[1].queries = append(sets[1].queries, dataset.ClusterProbe(cl, cfg.Seed+int64(i)))
	}
	for _, set := range sets {
		with := buildFromPseudo(set.items, 113, true, true)
		without := buildFromPseudo(set.items, 113, false, true)
		h := buildTree(bulk.LoaderHilbert, set.items, cfg.bulkOptions())
		cw := measureQueries(with, set.queries)
		cwo := measureQueries(without, set.queries)
		ch := measureQueries(h.tree, set.queries)
		t.Rows = append(t.Rows, []string{
			set.name,
			fmt.Sprintf("%.1f%%", 100*cw.LeafFrac),
			fmt.Sprintf("%.1f%%", 100*cwo.LeafFrac),
			fmt.Sprintf("%.1f%%", 100*ch.LeafFrac),
		})
	}
	return t
}

// AblationRoundToB measures the paper's "round divisions to multiples of
// B" refinement: it trades nothing in query cost for near-100% leaf fill.
func AblationRoundToB(cfg Config) Table {
	cfg = cfg.normalized()
	items := dataset.Eastern(cfg.n(100000), cfg.Seed)
	queries := workload.Squares(geom.ItemsMBR(items), 0.01, cfg.Queries, cfg.Seed)
	t := Table{
		ID:      "ablation-roundb",
		Title:   "Ablation: kd divisions rounded to multiples of B vs exact halves",
		Columns: []string{"variant", "leaf fill", "leaves", "query cost"},
		Notes:   "rounding keeps leaves full at no query cost (paper §2.1, construction refinement)",
	}
	for _, round := range []bool{true, false} {
		tr := buildFromPseudo(items, 113, true, round)
		fill, _ := tr.Utilization()
		c := measureQueries(tr, queries)
		name := "round-to-B"
		if !round {
			name = "exact halves"
		}
		leaves := 0
		tr.Walk(func(_ storage.PageID, _ int, isLeaf bool, _ []geom.Item) {
			if isLeaf {
				leaves++
			}
		})
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.2f%%", 100*fill),
			fmt.Sprintf("%d", leaves),
			fmtPct(c.Pct),
		})
	}
	return t
}

// AblationCache reproduces the paper's footnote 5: with all internal nodes
// cached the query cost is the leaf fetches; disabling the cache adds only
// the internal-node reads, which are few.
func AblationCache(cfg Config) Table {
	cfg = cfg.normalized()
	items := dataset.Eastern(cfg.n(100000), cfg.Seed)
	queries := workload.Squares(geom.ItemsMBR(items), 0.01, cfg.Queries, cfg.Seed)
	t := Table{
		ID:      "ablation-cache",
		Title:   "Ablation: internal-node cache on vs off (paper footnote 5)",
		Columns: []string{"cache", "avg blocks read", "avg leaf blocks"},
		Notes:   "the cache has little effect on window queries: internal levels are a small fraction",
	}
	// Both variants run on pagers without an LRU (capacity 0) so every
	// uncached node access hits the disk; the first pins the internal
	// levels like the paper's setup, the second caches nothing.
	for _, pin := range []bool{true, false} {
		disk := storage.NewDisk(storage.DefaultBlockSize)
		pager := storage.NewPager(disk, 0)
		in := storage.NewItemFileFrom(disk, items)
		tr := bulk.Load(bulk.LoaderPR, pager, in, cfg.bulkOptions())
		name := "no cache"
		if pin {
			tr.PinInternal()
			name = "internal pinned"
		}
		disk.ResetStats()
		leaves := 0
		for _, q := range queries {
			st := tr.QueryCount(q)
			leaves += st.LeavesVisited
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.1f", float64(disk.Stats().Reads)/float64(len(queries))),
			fmt.Sprintf("%.1f", float64(leaves)/float64(len(queries))),
		})
	}
	return t
}
