package compact

import (
	"math/rand"
	"testing"
	"time"

	"prtree/internal/bulk"
	"prtree/internal/geom"
	"prtree/internal/logmethod"
	"prtree/internal/storage"
)

// harness wires a Compactor to a fresh in-memory logmethod tree the way
// prtree.Dynamic does, minus the facade: Commit just runs the mutation
// (the memory backend's transactions are no-ops and there is no
// directory blob to stage).
func harness(base int) (*logmethod.Tree, *Compactor) {
	disk := storage.NewDisk(storage.DefaultBlockSize)
	pager := storage.NewPager(disk, -1)
	tr := logmethod.New(pager, bulk.Options{Fanout: 16, MemoryItems: 4096}, base)
	c := New(Config{
		Tree:    tr,
		Commit:  func(fn func()) error { fn(); return nil },
		Backend: disk,
	})
	return tr, c
}

func randItems(n int, seed int64) []geom.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]geom.Item, n)
	for i := range items {
		x, y := rng.Float64(), rng.Float64()
		items[i] = geom.Item{
			Rect: geom.NewRect(x, y, x+rng.Float64()*0.02, y+rng.Float64()*0.02),
			ID:   uint32(i + 1),
		}
	}
	return items
}

// waitMerge polls until at least one merge has completed and none is in
// flight, failing the test at the deadline: an all-in-memory workload can
// finish long before the supervisor goroutine is first scheduled.
func waitMerge(t *testing.T, c *Compactor) Stats {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := c.Stats()
		if st.MergesCompleted >= 1 && st.MergesStarted == st.MergesCompleted+st.MergesAborted {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("no merge settled: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCompactorBackgroundMerge(t *testing.T) {
	tr, c := harness(16)
	c.Start()
	defer c.Stop()

	items := randItems(200, 42)
	for _, it := range items {
		c.Throttle()
		tr.Insert(it)
	}
	st := waitMerge(t, c)

	if st.MergesAborted != 0 {
		t.Errorf("merges aborted: %d", st.MergesAborted)
	}
	if st.ItemsAbsorbed == 0 || st.ItemsMerged < st.ItemsAbsorbed {
		t.Errorf("item accounting: merged %d, absorbed %d", st.ItemsMerged, st.ItemsAbsorbed)
	}
	if st.WriteAmplification < 1 {
		t.Errorf("write amplification %.2f < 1", st.WriteAmplification)
	}
	if st.PagesRewritten == 0 {
		t.Errorf("no pages rewritten despite %d completed merges", st.MergesCompleted)
	}
	if st.SnapshotReaders != 0 {
		t.Errorf("snapshot readers leaked: %d", st.SnapshotReaders)
	}

	// Background merges must be invisible to queries.
	q := geom.NewRect(0.2, 0.2, 0.6, 0.6)
	want := map[uint32]bool{}
	for _, it := range items {
		if q.Intersects(it.Rect) {
			want[it.ID] = true
		}
	}
	got := map[uint32]bool{}
	tr.Query(q, func(it geom.Item) bool {
		if got[it.ID] {
			t.Fatalf("duplicate result %d", it.ID)
		}
		got[it.ID] = true
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("query results: got %d, want %d", len(got), len(want))
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("missing item %d", id)
		}
	}
}

func TestCompactorDrainPausesMerges(t *testing.T) {
	tr, c := harness(16)
	c.Start()
	defer c.Stop()

	release := c.Drain()
	before := c.Stats().MergesStarted
	for _, it := range randItems(5*16, 7) {
		tr.Insert(it)
	}
	// The buffer is over-full; a paused compactor must not touch it.
	time.Sleep(80 * time.Millisecond)
	if started := c.Stats().MergesStarted; started != before {
		t.Fatalf("merge started while drained: %d -> %d", before, started)
	}
	release()
	waitMerge(t, c)
}

func TestCompactorStopRevertsToInline(t *testing.T) {
	tr, c := harness(16)
	c.Start()
	for _, it := range randItems(40, 3) {
		tr.Insert(it)
	}
	c.Stop()
	c.Stop() // idempotent

	// After Stop the tree carries inline again: the buffer can never be
	// observed at or above base once an insert returns.
	for _, it := range randItems(64, 9) {
		tr.Insert(it)
		if got := tr.BufferLen(); got >= 16+1 {
			t.Fatalf("inline carry not restored: buffer %d", got)
		}
	}
	if c.Stats().MergesStarted != c.Stats().MergesCompleted+c.Stats().MergesAborted {
		t.Fatalf("carry left in flight after Stop: %+v", c.Stats())
	}
}
