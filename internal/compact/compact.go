// Package compact is the background compaction subsystem for the
// dynamized PR-tree: a supervisor goroutine that watches a
// logmethod.Tree for full buffers, rebuilds the merged level off to the
// side with the parallel bulk loaders while readers keep serving the old
// components, and atomically installs the result as one committed
// transaction. It turns the logarithmic method's worst-case O(N) insert
// stall (a full inline carry) into an O(1) buffer append: inserts during
// a merge land in the fresh buffer and are carried into the next merge.
//
// The subsystem leans on two pieces built elsewhere:
//
//   - storage.Snapshotter (epoch-pinned page reclamation) makes the swap
//     safe for lock-free readers: pages of a replaced level stay
//     byte-stable until the last reader of the superseded state drains.
//   - The WAL transaction bracket (supplied by the owner as Config.Commit)
//     makes the swap atomic and durable: crash before the install commit
//     recovers the pre-merge state; after, the post-merge state.
//
// The supervisor reuses the failure-isolation idioms of internal/serve's
// shard-recovery loop: panics in a merge cycle are contained (the merge
// aborts, the structure unwinds to its pre-merge state) and retried with
// doubling, jittered backoff.
package compact

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"prtree/internal/logmethod"
	"prtree/internal/storage"
)

// Config wires a Compactor to the tree it drives.
type Config struct {
	// Tree is the dynamized structure to compact. Required.
	Tree *logmethod.Tree

	// Commit brackets fn in the owner's mutation transaction — the same
	// serialization and durability (Begin / fn / stage meta / Commit)
	// that Insert and Delete get. Required. The install step and deferred
	// tombstone-GC rebuilds run through it.
	Commit func(fn func()) error

	// Backend is the storage under the tree, used for snapshot statistics
	// and the rollback guard (see storage.FileBackend.Rollbacks). Required.
	Backend storage.Backend

	// MaxBuffer bounds buffer growth while a merge is in flight: Throttle
	// blocks inserts once the buffer holds this many items (default
	// 8*base). The bound is what keeps the insert path's worst case at
	// O(buffer merge) instead of unbounded memory.
	MaxBuffer int

	// Interval is the supervisor's poll fallback when no kick arrives
	// (default 25ms). Kicks from the insert path wake it immediately.
	Interval time.Duration

	// Backoff and MaxBackoff shape the retry delay after a failed or
	// panicked merge cycle (defaults 50ms and 5s), matching the serve
	// package's recovery supervisor.
	Backoff    time.Duration
	MaxBackoff time.Duration
}

func (c Config) normalized() Config {
	if c.MaxBuffer <= 0 {
		c.MaxBuffer = 8 * c.Tree.Base()
	}
	if c.Interval <= 0 {
		c.Interval = 25 * time.Millisecond
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	return c
}

// Stats is a point-in-time view of the compactor's counters plus the
// backend's epoch state. Write amplification is measured in items: every
// item a merge rewrites, over every item a merge newly absorbed from the
// buffer — the logarithmic method's rebuild factor, observed rather than
// derived.
type Stats struct {
	MergesStarted   uint64 `json:"merges_started"`
	MergesCompleted uint64 `json:"merges_completed"`
	MergesAborted   uint64 `json:"merges_aborted"`
	GCRebuilds      uint64 `json:"gc_rebuilds"`
	PagesRewritten  uint64 `json:"pages_rewritten"`
	ItemsMerged     uint64 `json:"items_merged"`
	ItemsAbsorbed   uint64 `json:"items_absorbed"`
	// WriteAmplification = ItemsMerged / ItemsAbsorbed (0 until a merge
	// completes).
	WriteAmplification float64 `json:"write_amplification"`

	// Epoch, PinnedPages and SnapshotReaders mirror the backend's
	// storage.SnapshotStats at collection time.
	Epoch           uint64 `json:"epoch"`
	PinnedPages     int    `json:"pinned_pages"`
	SnapshotReaders int    `json:"snapshot_readers"`
}

// Compactor drives background merges for one tree. Create with New,
// start with Start, stop with Stop (or Close).
type Compactor struct {
	cfg Config
	fb  *storage.FileBackend // nil on memory-only chains; rollback guard off

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}

	pauseMu sync.Mutex // held by Drain'd sections; the loop takes it per cycle

	mergesStarted   atomic.Uint64
	mergesCompleted atomic.Uint64
	mergesAborted   atomic.Uint64
	gcRebuilds      atomic.Uint64
	pagesRewritten  atomic.Uint64
	itemsMerged     atomic.Uint64
	itemsAbsorbed   atomic.Uint64
}

// New returns an unstarted compactor and switches the tree into
// background-carry mode (inserts stop carrying inline immediately, so
// call Start promptly).
func New(cfg Config) *Compactor {
	cfg = cfg.normalized()
	c := &Compactor{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	c.fb, _ = storage.AsFile(cfg.Backend)
	cfg.Tree.SetBackground(true)
	return c
}

// Start launches the supervisor goroutine. Idempotent.
func (c *Compactor) Start() {
	c.startOnce.Do(func() { go c.run() })
}

// Stop halts the supervisor, waiting for an in-progress cycle to land or
// abort. The tree reverts to inline (synchronous) carries. Idempotent.
func (c *Compactor) Stop() {
	c.stopOnce.Do(func() {
		close(c.stop)
		c.Start() // ensure done closes even if Start was never called
		<-c.done
		c.cfg.Tree.SetBackground(false)
	})
}

// Throttle applies insert-path backpressure: it blocks while a merge is
// in flight and the buffer already holds MaxBuffer items. Call before —
// never inside — the insert's transaction bracket.
func (c *Compactor) Throttle() {
	c.cfg.Tree.WaitCapacity(c.cfg.MaxBuffer)
}

// Drain waits until no merge is in flight and returns a release function
// holding the compactor paused; callers bracket operations that must not
// race a merge (Flush's full rebuild) between Drain() and release().
func (c *Compactor) Drain() (release func()) {
	c.pauseMu.Lock()
	c.cfg.Tree.WaitIdle()
	return c.pauseMu.Unlock
}

// Stats returns the cumulative counters plus the backend's epoch state.
func (c *Compactor) Stats() Stats {
	st := Stats{
		MergesStarted:   c.mergesStarted.Load(),
		MergesCompleted: c.mergesCompleted.Load(),
		MergesAborted:   c.mergesAborted.Load(),
		GCRebuilds:      c.gcRebuilds.Load(),
		PagesRewritten:  c.pagesRewritten.Load(),
		ItemsMerged:     c.itemsMerged.Load(),
		ItemsAbsorbed:   c.itemsAbsorbed.Load(),
	}
	if st.ItemsAbsorbed > 0 {
		st.WriteAmplification = float64(st.ItemsMerged) / float64(st.ItemsAbsorbed)
	}
	snap := storage.EnsureSnapshotter(c.cfg.Backend).SnapshotStats()
	st.Epoch = snap.Epoch
	st.PinnedPages = snap.PinnedPages
	st.SnapshotReaders = snap.Readers
	return st
}

// run is the supervisor loop: wake on a kick (buffer filled), the poll
// interval, or stop; run one cycle; back off after failures.
func (c *Compactor) run() {
	defer close(c.done)
	backoff := c.cfg.Backoff
	timer := time.NewTimer(c.cfg.Interval)
	defer timer.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-c.cfg.Tree.CarryKick():
		case <-timer.C:
		}
		ok := c.cycle()
		if ok {
			backoff = c.cfg.Backoff
			timer.Reset(c.cfg.Interval)
			continue
		}
		// Failed or panicked cycle: doubling backoff with jitter, the
		// serve supervisor's retry shape.
		sleep := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
		if backoff *= 2; backoff > c.cfg.MaxBackoff {
			backoff = c.cfg.MaxBackoff
		}
		select {
		case <-c.stop:
			return
		case <-time.After(sleep):
		}
		timer.Reset(c.cfg.Interval)
	}
}

// rollbackGen reads the backend's rollback counter (always 0 on memory
// chains, where transactions are no-ops and rollback cannot revoke
// allocations).
func (c *Compactor) rollbackGen() uint64 {
	if c.fb == nil {
		return 0
	}
	return c.fb.Rollbacks()
}

// cycle runs at most one unit of background work — a deferred GC rebuild
// or one carry merge — and reports whether the compactor is healthy (an
// idle cycle is healthy; only a panic or failed commit is not).
func (c *Compactor) cycle() (healthy bool) {
	c.pauseMu.Lock()
	defer c.pauseMu.Unlock()

	t := c.cfg.Tree
	if t.TakeGCPending() {
		if err := c.cfg.Commit(func() { t.RunGC() }); err != nil {
			return false
		}
		c.gcRebuilds.Add(1)
	}

	job, ok := t.BeginCarry()
	if !ok {
		return true
	}
	c.mergesStarted.Add(1)
	gen := c.rollbackGen()

	// Build off to the side, outside any transaction. A panic here must
	// not take the process down (serve threads the insert path through
	// live traffic): contain it, unwind the carry, report unhealthy so
	// the loop backs off before retrying.
	built := func() (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		job.Build()
		return true
	}()
	if !built {
		// Pages allocated before the panic are only reclaimable if no
		// rollback revoked them meanwhile; the half-built tree itself is
		// unusable either way.
		job.Abort(gen == c.rollbackGen())
		c.mergesAborted.Add(1)
		return false
	}

	var installed bool
	err := c.cfg.Commit(func() {
		// The commit bracket serializes against every writer transaction,
		// so the generation is stable within it. If a rollback hit while
		// the build ran, the built pages may have been handed to someone
		// else — abandon them and retry the merge from scratch.
		if gen != c.rollbackGen() {
			job.Abort(false)
			return
		}
		job.Install()
		installed = true
	})
	if err != nil {
		// The commit itself failed: the install's state swap already
		// happened in memory but never became durable; the caller's
		// rollback restored the allocator. The in-memory directory is
		// still coherent (it references pre-merge pages that remain
		// allocated in memory), but the safest recovery is to surface
		// unhealthy and let the owner decide — mirroring how Insert's
		// commit failures panic out of prtree.Dynamic.
		c.mergesAborted.Add(1)
		return false
	}
	if !installed {
		c.mergesAborted.Add(1)
		return false
	}
	c.mergesCompleted.Add(1)
	c.itemsMerged.Add(uint64(job.InputItems()))
	c.itemsAbsorbed.Add(uint64(job.NewItems()))
	c.pagesRewritten.Add(uint64(job.BuiltNodes()))
	storage.EnsureSnapshotter(c.cfg.Backend).SnapshotAdvance()
	return true
}
