// Package hilbert computes Hilbert space-filling curve indices in two and d
// dimensions. The packed Hilbert R-tree (H) sorts rectangle centers by the
// 2D curve; the four-dimensional Hilbert R-tree (H4) sorts the corner
// transform (xmin, ymin, xmax, ymax) by the 4D curve.
//
// The 2D path is the classic iterative quadrant-rotation algorithm; the
// d-dimensional path is Skilling's transpose algorithm ("Programming the
// Hilbert curve", AIP Conf. Proc. 707, 2004), which works for any number of
// dimensions and bit depth with dims*bits <= 64.
package hilbert

import (
	"fmt"

	"prtree/internal/geom"
)

// Index2D returns the Hilbert index of cell (x, y) on the 2^bits x 2^bits
// grid. bits must be in [1, 31]; x and y must be < 2^bits.
func Index2D(x, y uint32, bits int) uint64 {
	if bits < 1 || bits > 31 {
		panic(fmt.Sprintf("hilbert: Index2D bits %d out of range [1,31]", bits))
	}
	var d uint64
	for s := uint32(1) << (bits - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - (x & (s - 1)) | (x &^ (2*s - 1))
				y = s - 1 - (y & (s - 1)) | (y &^ (2*s - 1))
			}
			x, y = y, x
		}
	}
	return d
}

// Coords2D inverts Index2D: it returns the (x, y) cell of Hilbert index d
// on the 2^bits grid.
func Coords2D(d uint64, bits int) (x, y uint32) {
	if bits < 1 || bits > 31 {
		panic(fmt.Sprintf("hilbert: Coords2D bits %d out of range [1,31]", bits))
	}
	t := d
	for s := uint64(1); s < uint64(1)<<bits; s *= 2 {
		rx := uint32(1 & (t / 2))
		ry := uint32(1 & (t ^ uint64(rx)))
		// Rotate back.
		if ry == 0 {
			if rx == 1 {
				x = uint32(s) - 1 - x
				y = uint32(s) - 1 - y
			}
			x, y = y, x
		}
		x += uint32(s) * rx
		y += uint32(s) * ry
		t /= 4
	}
	return x, y
}

// Index returns the Hilbert index of the cell with the given coordinates on
// the d-dimensional 2^bits grid, where d = len(coords). It requires
// 1 <= d*bits <= 64 and every coordinate < 2^bits. The slice is not modified.
func Index(coords []uint32, bits int) uint64 {
	dims := len(coords)
	if dims == 0 || bits < 1 || dims*bits > 64 {
		panic(fmt.Sprintf("hilbert: Index dims=%d bits=%d unsupported", dims, bits))
	}
	x := make([]uint32, dims)
	copy(x, coords)
	axesToTranspose(x, bits)
	return interleave(x, bits)
}

// Coords inverts Index: it returns the coordinates of the cell with Hilbert
// index h on the dims-dimensional 2^bits grid.
func Coords(h uint64, dims, bits int) []uint32 {
	if dims == 0 || bits < 1 || dims*bits > 64 {
		panic(fmt.Sprintf("hilbert: Coords dims=%d bits=%d unsupported", dims, bits))
	}
	x := deinterleave(h, dims, bits)
	transposeToAxes(x, bits)
	return x
}

// axesToTranspose converts coordinates into Skilling's transpose form
// in place.
func axesToTranspose(x []uint32, bits int) {
	n := len(x)
	m := uint32(1) << (bits - 1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes inverts axesToTranspose in place.
func transposeToAxes(x []uint32, bits int) {
	n := len(x)
	m := uint32(2) << (bits - 1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != m; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// interleave packs the transpose into a single index: bit j of axis i lands
// at position j*dims + (dims-1-i), most significant bits first.
func interleave(x []uint32, bits int) uint64 {
	dims := len(x)
	var h uint64
	for j := bits - 1; j >= 0; j-- {
		for i := 0; i < dims; i++ {
			h = (h << 1) | uint64((x[i]>>uint(j))&1)
		}
	}
	return h
}

func deinterleave(h uint64, dims, bits int) []uint32 {
	x := make([]uint32, dims)
	pos := dims*bits - 1
	for j := bits - 1; j >= 0; j-- {
		for i := 0; i < dims; i++ {
			x[i] |= uint32((h>>uint(pos))&1) << uint(j)
			pos--
		}
	}
	return x
}

// Quantizer2D maps points in a world rectangle onto the 2^bits Hilbert
// grid. The grid is square over the larger world extent (both axes share
// one scale), matching the classical packed-Hilbert implementations the
// paper benchmarks: per-axis normalization would silently rescale
// anisotropic data and change the curve's clustering behavior.
type Quantizer2D struct {
	world geom.Rect
	bits  int
	sx    float64
	sy    float64
}

// NewQuantizer2D builds a quantizer for points inside world. A degenerate
// world quantizes everything to cell 0.
func NewQuantizer2D(world geom.Rect, bits int) Quantizer2D {
	q := Quantizer2D{world: world, bits: bits}
	side := float64(uint64(1) << uint(bits))
	extent := world.Width()
	if h := world.Height(); h > extent {
		extent = h
	}
	if extent > 0 {
		q.sx = side / extent
		q.sy = side / extent
	}
	return q
}

// Key returns the Hilbert index of point (x, y).
func (q Quantizer2D) Key(x, y float64) uint64 {
	return Index2D(q.cell(x, q.world.MinX, q.sx), q.cell(y, q.world.MinY, q.sy), q.bits)
}

// CenterKey returns the Hilbert index of the rectangle's center — the sort
// key of the packed Hilbert R-tree.
func (q Quantizer2D) CenterKey(r geom.Rect) uint64 {
	cx, cy := r.Center()
	return q.Key(cx, cy)
}

func (q Quantizer2D) cell(v, lo, scale float64) uint32 {
	c := int64((v - lo) * scale)
	max := int64(1)<<uint(q.bits) - 1
	if c < 0 {
		c = 0
	}
	if c > max {
		c = max
	}
	return uint32(c)
}

// Quantizer4D maps 2D rectangles onto the 4D Hilbert grid via the corner
// transform — the sort key of the four-dimensional Hilbert R-tree.
type Quantizer4D struct {
	world geom.Rect
	bits  int
	sx    float64
	sy    float64
}

// NewQuantizer4D builds a quantizer; bits must satisfy 4*bits <= 64. Like
// Quantizer2D it uses one uniform scale for all coordinates.
func NewQuantizer4D(world geom.Rect, bits int) Quantizer4D {
	if 4*bits > 64 {
		panic(fmt.Sprintf("hilbert: Quantizer4D bits %d too large", bits))
	}
	q := Quantizer4D{world: world, bits: bits}
	side := float64(uint64(1) << uint(bits))
	extent := world.Width()
	if h := world.Height(); h > extent {
		extent = h
	}
	if extent > 0 {
		q.sx = side / extent
		q.sy = side / extent
	}
	return q
}

// Key returns the 4D Hilbert index of (xmin, ymin, xmax, ymax).
func (q Quantizer4D) Key(r geom.Rect) uint64 {
	coords := []uint32{
		q.cell(r.MinX, q.world.MinX, q.sx),
		q.cell(r.MinY, q.world.MinY, q.sy),
		q.cell(r.MaxX, q.world.MinX, q.sx),
		q.cell(r.MaxY, q.world.MinY, q.sy),
	}
	return Index(coords, q.bits)
}

func (q Quantizer4D) cell(v, lo, scale float64) uint32 {
	c := int64((v - lo) * scale)
	max := int64(1)<<uint(q.bits) - 1
	if c < 0 {
		c = 0
	}
	if c > max {
		c = max
	}
	return uint32(c)
}
