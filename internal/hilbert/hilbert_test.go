package hilbert

import (
	"testing"
	"testing/quick"

	"prtree/internal/geom"
)

func abs32(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestIndex2DKnownOrder2(t *testing.T) {
	// The order-2 (4x4) Hilbert curve starting at (0,0): the classic
	// Wikipedia xy2d mapping.
	want := map[[2]uint32]uint64{
		{0, 0}: 0, {1, 0}: 1, {1, 1}: 2, {0, 1}: 3,
		{0, 2}: 4, {0, 3}: 5, {1, 3}: 6, {1, 2}: 7,
		{2, 2}: 8, {2, 3}: 9, {3, 3}: 10, {3, 2}: 11,
		{3, 1}: 12, {2, 1}: 13, {2, 0}: 14, {3, 0}: 15,
	}
	for xy, d := range want {
		if got := Index2D(xy[0], xy[1], 2); got != d {
			t.Errorf("Index2D(%d,%d) = %d, want %d", xy[0], xy[1], got, d)
		}
	}
}

func TestIndex2DBijectiveSmall(t *testing.T) {
	const bits = 4
	side := uint32(1) << bits
	seen := make(map[uint64][2]uint32)
	for x := uint32(0); x < side; x++ {
		for y := uint32(0); y < side; y++ {
			d := Index2D(x, y, bits)
			if d >= uint64(side)*uint64(side) {
				t.Fatalf("index %d out of range for (%d,%d)", d, x, y)
			}
			if prev, dup := seen[d]; dup {
				t.Fatalf("collision: (%d,%d) and (%d,%d) both map to %d", x, y, prev[0], prev[1], d)
			}
			seen[d] = [2]uint32{x, y}
		}
	}
}

func TestIndex2DAdjacency(t *testing.T) {
	// Consecutive Hilbert indices must be adjacent grid cells (Manhattan
	// distance exactly 1) — the locality property that makes packed
	// Hilbert R-trees work.
	const bits = 5
	side := uint64(1) << bits
	var px, py uint32
	for d := uint64(0); d < side*side; d++ {
		x, y := Coords2D(d, bits)
		if d > 0 {
			if abs32(x, px)+abs32(y, py) != 1 {
				t.Fatalf("indices %d and %d not adjacent: (%d,%d) vs (%d,%d)", d-1, d, px, py, x, y)
			}
		}
		px, py = x, y
	}
}

func TestCoords2DRoundTrip(t *testing.T) {
	prop := func(x, y uint32) bool {
		const bits = 16
		x &= (1 << bits) - 1
		y &= (1 << bits) - 1
		d := Index2D(x, y, bits)
		gx, gy := Coords2D(d, bits)
		return gx == x && gy == y
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestIndex2DBadBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bits=0 should panic")
		}
	}()
	Index2D(0, 0, 0)
}

func TestIndexDBijectiveSmall(t *testing.T) {
	for _, dims := range []int{2, 3, 4} {
		const bits = 2
		side := uint32(1) << bits
		total := uint64(1) << uint(dims*bits)
		seen := make(map[uint64]bool)
		coords := make([]uint32, dims)
		var walk func(i int)
		walk = func(i int) {
			if i == dims {
				c := make([]uint32, dims)
				copy(c, coords)
				d := Index(c, bits)
				if d >= total {
					t.Fatalf("dims=%d: index %d out of range for %v", dims, d, coords)
				}
				if seen[d] {
					t.Fatalf("dims=%d: collision at %d for %v", dims, d, coords)
				}
				seen[d] = true
				return
			}
			for v := uint32(0); v < side; v++ {
				coords[i] = v
				walk(i + 1)
			}
		}
		walk(0)
		if uint64(len(seen)) != total {
			t.Fatalf("dims=%d: only %d of %d cells covered", dims, len(seen), total)
		}
	}
}

func TestIndexDAdjacency(t *testing.T) {
	// Skilling's curve must also visit cells in unit steps.
	for _, dims := range []int{2, 3, 4} {
		const bits = 2
		total := uint64(1) << uint(dims*bits)
		prev := Coords(0, dims, bits)
		for h := uint64(1); h < total; h++ {
			cur := Coords(h, dims, bits)
			dist := uint32(0)
			for i := 0; i < dims; i++ {
				dist += abs32(cur[i], prev[i])
			}
			if dist != 1 {
				t.Fatalf("dims=%d: steps %d->%d jump %d cells: %v -> %v", dims, h-1, h, dist, prev, cur)
			}
			prev = cur
		}
	}
}

func TestIndexDRoundTripQuick(t *testing.T) {
	prop := func(a, b, c, d uint32) bool {
		const bits = 16
		coords := []uint32{a & 0xffff, b & 0xffff, c & 0xffff, d & 0xffff}
		h := Index(coords, bits)
		got := Coords(h, 4, bits)
		for i := range coords {
			if got[i] != coords[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexDoesNotMutateInput(t *testing.T) {
	coords := []uint32{3, 1, 2}
	Index(coords, 4)
	if coords[0] != 3 || coords[1] != 1 || coords[2] != 2 {
		t.Errorf("input mutated: %v", coords)
	}
}

func TestIndexBadArgsPanics(t *testing.T) {
	cases := []func(){
		func() { Index(nil, 4) },
		func() { Index(make([]uint32, 5), 13) }, // 65 bits
		func() { Coords(0, 0, 4) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestQuantizer2DKeyDistinct(t *testing.T) {
	world := geom.NewRect(0, 0, 1, 1)
	q := NewQuantizer2D(world, 16)
	k1 := q.Key(0.1, 0.1)
	k2 := q.Key(0.9, 0.9)
	k3 := q.Key(0.1, 0.1)
	if k1 == k2 {
		t.Error("distant points should get different keys")
	}
	if k1 != k3 {
		t.Error("same point must get same key")
	}
}

func TestQuantizer2DClamps(t *testing.T) {
	world := geom.NewRect(0, 0, 1, 1)
	q := NewQuantizer2D(world, 8)
	// Out-of-world points clamp rather than wrap.
	if q.Key(-5, -5) != q.Key(0, 0) {
		t.Error("low clamp failed")
	}
	if q.Key(5, 5) != q.Key(1, 1) {
		t.Error("high clamp failed")
	}
}

func TestQuantizer2DDegenerateWorld(t *testing.T) {
	q := NewQuantizer2D(geom.PointRect(2, 3), 8)
	if q.Key(2, 3) != q.Key(100, -7) {
		t.Error("degenerate world should map everything to one cell")
	}
}

func TestQuantizerCenterKeyLocality(t *testing.T) {
	world := geom.NewRect(0, 0, 1, 1)
	q := NewQuantizer2D(world, 16)
	// Two nearly identical rectangles should have close keys; a far one
	// should usually be farther. This is a sanity check, not a strict
	// property (Hilbert locality is statistical).
	a := q.CenterKey(geom.NewRect(0.10, 0.10, 0.11, 0.11))
	b := q.CenterKey(geom.NewRect(0.101, 0.10, 0.111, 0.11))
	c := q.CenterKey(geom.NewRect(0.9, 0.9, 0.91, 0.91))
	distAB := int64(a) - int64(b)
	if distAB < 0 {
		distAB = -distAB
	}
	distAC := int64(a) - int64(c)
	if distAC < 0 {
		distAC = -distAC
	}
	if distAB >= distAC {
		t.Errorf("locality violated: |a-b|=%d >= |a-c|=%d", distAB, distAC)
	}
}

func TestQuantizer4DKey(t *testing.T) {
	world := geom.NewRect(0, 0, 1, 1)
	q := NewQuantizer4D(world, 16)
	r1 := geom.NewRect(0.1, 0.1, 0.2, 0.2)
	r2 := geom.NewRect(0.1, 0.1, 0.9, 0.9) // same corner, very different extent
	if q.Key(r1) == q.Key(r2) {
		t.Error("4D key must distinguish extents")
	}
	if q.Key(r1) != q.Key(r1) {
		t.Error("4D key must be deterministic")
	}
}

func TestQuantizer4DTooManyBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("4*17 bits should panic")
		}
	}()
	NewQuantizer4D(geom.NewRect(0, 0, 1, 1), 17)
}
