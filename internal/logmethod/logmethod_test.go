package logmethod

import (
	"math"
	"math/rand"
	"testing"

	"prtree/internal/bulk"
	"prtree/internal/geom"
	"prtree/internal/rtree"
	"prtree/internal/storage"
)

func newTree(base int) *Tree {
	disk := storage.NewDisk(storage.DefaultBlockSize)
	pager := storage.NewPager(disk, -1)
	return New(pager, bulk.Options{Fanout: 16, MemoryItems: 4096}, base)
}

func randItems(n int, seed int64) []geom.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]geom.Item, n)
	for i := range items {
		x, y := rng.Float64(), rng.Float64()
		items[i] = geom.Item{
			Rect: geom.NewRect(x, y, x+rng.Float64()*0.02, y+rng.Float64()*0.02),
			ID:   uint32(i),
		}
	}
	return items
}

func checkAgainstBruteForce(t *testing.T, tr *Tree, universe []geom.Item, q geom.Rect) {
	t.Helper()
	want := make(map[uint32]bool)
	for _, it := range universe {
		if q.Intersects(it.Rect) {
			want[it.ID] = true
		}
	}
	got := make(map[uint32]bool)
	tr.Query(q, func(it geom.Item) bool {
		if got[it.ID] {
			t.Fatalf("duplicate result %d", it.ID)
		}
		got[it.ID] = true
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("query %v: got %d, want %d", q, len(got), len(want))
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("query %v: missing %d", q, id)
		}
	}
}

func TestInsertAndQuery(t *testing.T) {
	tr := newTree(8)
	items := randItems(500, 1)
	for _, it := range items {
		tr.Insert(it)
	}
	if tr.Len() != 500 {
		t.Fatalf("len = %d", tr.Len())
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		q := geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		checkAgainstBruteForce(t, tr, items, q)
	}
}

func TestBinaryCounterLevels(t *testing.T) {
	tr := newTree(8)
	// Insert exactly base*2^3 items: levels should telescope, leaving few
	// occupied levels (a binary-counter pattern).
	for i := 0; i < 64; i++ {
		tr.Insert(geom.Item{Rect: geom.PointRect(float64(i), 0), ID: uint32(i)})
	}
	if tr.Levels() > 4 {
		t.Errorf("too many occupied levels: %d", tr.Levels())
	}
	if tr.Len() != 64 {
		t.Errorf("len = %d", tr.Len())
	}
}

func TestDeleteBasic(t *testing.T) {
	tr := newTree(8)
	items := randItems(200, 3)
	for _, it := range items {
		tr.Insert(it)
	}
	for i, it := range items {
		if !tr.Delete(it) {
			t.Fatalf("delete %d failed", i)
		}
		if tr.Delete(it) {
			t.Fatalf("double delete %d succeeded", i)
		}
		if tr.Len() != len(items)-i-1 {
			t.Fatalf("len = %d after %d deletes", tr.Len(), i+1)
		}
	}
	if got := tr.QueryCollect(geom.NewRect(0, 0, 2, 2)); len(got) != 0 {
		t.Errorf("emptied tree returned %d items", len(got))
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := newTree(8)
	items := randItems(50, 4)
	for _, it := range items {
		tr.Insert(it)
	}
	if tr.Delete(geom.Item{Rect: geom.NewRect(9, 9, 10, 10), ID: 1234}) {
		t.Error("deleting absent item should fail")
	}
	if tr.Delete(geom.Item{Rect: items[0].Rect, ID: 9999}) {
		t.Error("wrong id should fail")
	}
}

func TestMixedWorkloadMatchesBruteForce(t *testing.T) {
	tr := newTree(16)
	rng := rand.New(rand.NewSource(5))
	live := make(map[uint32]geom.Item)
	next := uint32(0)
	for step := 0; step < 4000; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			x, y := rng.Float64(), rng.Float64()
			it := geom.Item{Rect: geom.NewRect(x, y, x+0.03, y+0.03), ID: next}
			next++
			tr.Insert(it)
			live[it.ID] = it
		} else {
			for _, it := range live {
				if !tr.Delete(it) {
					t.Fatalf("step %d: delete failed", step)
				}
				delete(live, it.ID)
				break
			}
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("len = %d, want %d", tr.Len(), len(live))
	}
	universe := make([]geom.Item, 0, len(live))
	for _, it := range live {
		universe = append(universe, it)
	}
	for i := 0; i < 25; i++ {
		q := geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		checkAgainstBruteForce(t, tr, universe, q)
	}
}

func TestTombstoneRebuildReclaimsSpace(t *testing.T) {
	disk := storage.NewDisk(storage.DefaultBlockSize)
	pager := storage.NewPager(disk, -1)
	tr := New(pager, bulk.Options{Fanout: 16, MemoryItems: 4096}, 16)
	items := randItems(1000, 6)
	for _, it := range items {
		tr.Insert(it)
	}
	peak := disk.PagesInUse()
	for _, it := range items[:900] {
		tr.Delete(it)
	}
	// The half-dead rebuild must have fired, shrinking the footprint.
	if disk.PagesInUse() >= peak {
		t.Errorf("pages in use %d did not shrink from peak %d", disk.PagesInUse(), peak)
	}
	universe := items[900:]
	checkAgainstBruteForce(t, tr, universe, geom.NewRect(0, 0, 2, 2))
}

func TestReviveTombstonedID(t *testing.T) {
	tr := newTree(4)
	it := geom.Item{Rect: geom.NewRect(0.1, 0.1, 0.2, 0.2), ID: 7}
	// Push it into a static level.
	tr.Insert(it)
	for i := 0; i < 10; i++ {
		tr.Insert(geom.Item{Rect: geom.PointRect(float64(i), 5), ID: uint32(100 + i)})
	}
	if !tr.Delete(it) {
		t.Fatal("delete failed")
	}
	tr.Insert(it) // revival path
	if tr.Len() != 11 {
		t.Fatalf("len = %d", tr.Len())
	}
	got := tr.QueryCollect(it.Rect)
	found := false
	for _, g := range got {
		if g.ID == 7 {
			found = true
		}
	}
	if !found {
		t.Error("revived item not found")
	}
}

func TestReviveWithDifferentRectPanics(t *testing.T) {
	tr := newTree(4)
	it := geom.Item{Rect: geom.NewRect(0.1, 0.1, 0.2, 0.2), ID: 7}
	tr.Insert(it)
	for i := 0; i < 10; i++ {
		tr.Insert(geom.Item{Rect: geom.PointRect(float64(i), 5), ID: uint32(100 + i)})
	}
	tr.Delete(it)
	defer func() {
		if recover() == nil {
			t.Error("id reuse with different rect should panic")
		}
	}()
	tr.Insert(geom.Item{Rect: geom.NewRect(0.5, 0.5, 0.6, 0.6), ID: 7})
}

func TestFlushCompactsToOneLevel(t *testing.T) {
	tr := newTree(8)
	items := randItems(300, 7)
	for _, it := range items {
		tr.Insert(it)
	}
	tr.Flush()
	if tr.Levels() > 1 {
		t.Errorf("flush left %d levels", tr.Levels())
	}
	checkAgainstBruteForce(t, tr, items, geom.NewRect(0.2, 0.2, 0.8, 0.8))
}

func TestItemsReturnsLive(t *testing.T) {
	tr := newTree(8)
	items := randItems(100, 8)
	for _, it := range items {
		tr.Insert(it)
	}
	for _, it := range items[:40] {
		tr.Delete(it)
	}
	got := tr.Items()
	if len(got) != 60 {
		t.Fatalf("items = %d", len(got))
	}
	seen := map[uint32]bool{}
	for _, it := range got {
		seen[it.ID] = true
	}
	for _, it := range items[:40] {
		if seen[it.ID] {
			t.Fatalf("deleted item %d still listed", it.ID)
		}
	}
}

func TestQueryEarlyStop(t *testing.T) {
	tr := newTree(8)
	for _, it := range randItems(300, 9) {
		tr.Insert(it)
	}
	count := 0
	tr.Query(geom.NewRect(0, 0, 2, 2), func(geom.Item) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Errorf("early stop at %d", count)
	}
}

func TestAmortizedInsertIO(t *testing.T) {
	// Total I/O for n inserts should be O(n/B * log^2-ish), far below
	// n * treeHeight that per-item inserts into a static tree would cost.
	disk := storage.NewDisk(storage.DefaultBlockSize)
	pager := storage.NewPager(disk, -1)
	tr := New(pager, bulk.Options{MemoryItems: 1 << 14}, 0)
	items := randItems(20000, 10)
	disk.ResetStats()
	for _, it := range items {
		tr.Insert(it)
	}
	total := disk.Stats().Total()
	perItem := float64(total) / float64(len(items))
	if perItem > 2.0 {
		t.Errorf("amortized insert cost %.2f I/Os per item, want well below 2", perItem)
	}
	if math.IsNaN(perItem) {
		t.Fatal("no I/O recorded")
	}
}

// TestDynamicCompressedLayout routes the logarithmic method's static
// levels through the compressed page layout and cross-checks queries
// against a brute-force scan through churn.
func TestDynamicCompressedLayout(t *testing.T) {
	disk := storage.NewDisk(storage.DefaultBlockSize)
	tr := New(storage.NewPager(disk, -1), bulk.Options{Layout: rtree.LayoutCompressed, MemoryItems: 1 << 14}, 0)
	if tr.base != rtree.LayoutCompressed.MaxFanout(storage.DefaultBlockSize) {
		t.Fatalf("default base %d, want the compressed fanout %d",
			tr.base, rtree.LayoutCompressed.MaxFanout(storage.DefaultBlockSize))
	}
	rng := rand.New(rand.NewSource(77))
	live := map[uint32]geom.Item{}
	for i := 0; i < 4000; i++ {
		x, y := rng.Float64(), rng.Float64()
		it := geom.Item{Rect: geom.NewRect(x, y, x+rng.Float64()*0.01, y+rng.Float64()*0.01), ID: uint32(i)}
		tr.Insert(it)
		live[it.ID] = it
		if i%5 == 2 {
			for id, victim := range live {
				if !tr.Delete(victim) {
					t.Fatalf("delete %d failed", id)
				}
				delete(live, id)
				break
			}
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len %d, want %d", tr.Len(), len(live))
	}
	for i := 0; i < 25; i++ {
		x, y := rng.Float64(), rng.Float64()
		q := geom.NewRect(x, y, x+0.2, y+0.2)
		got := map[uint32]bool{}
		tr.Query(q, func(it geom.Item) bool { got[it.ID] = true; return true })
		want := 0
		for _, it := range live {
			if q.Intersects(it.Rect) {
				want++
				if !got[it.ID] {
					t.Fatalf("query %v missed %d", q, it.ID)
				}
			}
		}
		if len(got) != want {
			t.Fatalf("query %v: %d results, want %d", q, len(got), want)
		}
	}
}
