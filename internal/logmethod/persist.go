package logmethod

import (
	"encoding/binary"
	"fmt"
	"math"

	"prtree/internal/bulk"
	"prtree/internal/geom"
	"prtree/internal/rtree"
	"prtree/internal/storage"
)

// Persistence for the dynamized tree. The component directory is split
// between the backend's metadata blob and dedicated state pages:
//
//   - The meta blob (staged with SetMeta inside the caller's commit, so
//     it swaps atomically with the page writes) holds the fixed-size
//     part: magic, base, live/stored counters, the spill-chain heads,
//     and one rtree meta record per level slot.
//   - The buffer and the tombstone set can outgrow the meta blob's
//     one-block budget, so their records spill into chained state pages
//     (each page: next-pointer, count, packed 36-byte records). The
//     chains are rewritten wholesale on every SaveState — the buffer is
//     small by construction (≤ base items, a few pages) and the
//     tombstone set is bounded by the GC rebuild at half the stored
//     items.
//
// SaveState must run inside the same backend transaction as the mutation
// it records: the chain rewrite (frees + fresh pages) then commits
// atomically with the meta swap, and a crash recovers either the whole
// new state or the whole old one via the existing WAL replay.

// dynMagic identifies a serialized logmethod directory (version 1).
var dynMagic = [8]byte{'P', 'R', 'D', 'Y', 'N', 'A', '0', '1'}

const (
	itemRecSize     = 4 + 4*8 // ID + 4 float64 coords
	spillHeaderSize = 4 + 2   // next PageID + record count
	dynHeaderSize   = 8 + 4*8 // magic + base,live,stored,bufHead,bufCount,deadHead,deadCount,nLevels
)

// SaveState rewrites the spill chains on dev and returns the meta blob
// describing the full directory. Call inside the transaction bracketing
// the mutation being persisted; stage the returned blob with SetMeta
// before committing.
func (t *Tree) SaveState(dev storage.Backend) []byte {
	s := t.st.Load()

	// Fold the in-flight merge snapshot back into the buffer image: on
	// recovery the carry no longer exists, so its inputs are plain buffer
	// items again. Tombstones that target merge-snapshot items resolve
	// physically here, exactly as Carry.Abort resolves them in memory.
	items := make([]geom.Item, 0, len(s.buffer)+len(s.merging))
	dead := s.dead
	stored := s.stored
	if len(s.merging) > 0 {
		copied := false
		for _, it := range s.merging {
			if r, gone := dead[it.ID]; gone && r == it.Rect {
				if !copied {
					dead = copyDead(dead)
					copied = true
				}
				delete(dead, it.ID)
				stored--
				continue
			}
			items = append(items, it)
		}
	}
	items = append(items, s.buffer...)

	// Replace the previous spill chains wholesale.
	for _, id := range t.spill {
		dev.Free(id)
	}
	t.spill = t.spill[:0]
	bufHead, bufPages := t.writeChain(dev, items, nil)
	deadHead, deadPages := t.writeChain(dev, nil, dead)
	t.spill = append(t.spill, bufPages...)
	t.spill = append(t.spill, deadPages...)

	meta := make([]byte, 0, dynHeaderSize+len(s.levels)*(1+rtree.MetaSize))
	meta = append(meta, dynMagic[:]...)
	meta = binary.LittleEndian.AppendUint32(meta, uint32(t.base))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(s.live))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(stored))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(bufHead))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(len(items)))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(deadHead))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(len(dead)))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(len(s.levels)))
	for _, l := range s.levels {
		if l == nil {
			meta = append(meta, 0)
			continue
		}
		meta = append(meta, 1)
		meta = append(meta, l.EncodeMeta()...)
	}
	return meta
}

// writeChain packs records (either an item slice or a tombstone map) into
// a fresh chain of state pages and returns the head id (NilPage when
// empty) plus the allocated pages.
func (t *Tree) writeChain(dev storage.Backend, items []geom.Item, dead map[uint32]geom.Rect) (storage.PageID, []storage.PageID) {
	recs := items
	if dead != nil {
		recs = make([]geom.Item, 0, len(dead))
		for id, r := range dead {
			recs = append(recs, geom.Item{ID: id, Rect: r})
		}
	}
	if len(recs) == 0 {
		return storage.NilPage, nil
	}
	perPage := (dev.BlockSize() - spillHeaderSize) / itemRecSize
	if perPage <= 0 {
		panic("logmethod: block size too small for state records")
	}
	nPages := (len(recs) + perPage - 1) / perPage
	pages := make([]storage.PageID, nPages)
	for i := range pages {
		pages[i] = dev.Alloc()
	}
	buf := make([]byte, 0, dev.BlockSize())
	for i := 0; i < nPages; i++ {
		lo, hi := i*perPage, (i+1)*perPage
		if hi > len(recs) {
			hi = len(recs)
		}
		next := storage.NilPage
		if i+1 < nPages {
			next = pages[i+1]
		}
		buf = buf[:0]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(next))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(hi-lo))
		for _, it := range recs[lo:hi] {
			buf = appendItem(buf, it)
		}
		dev.Write(pages[i], buf)
	}
	return pages[0], pages
}

func appendItem(buf []byte, it geom.Item) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, it.ID)
	for _, f := range [4]float64{it.Rect.MinX, it.Rect.MinY, it.Rect.MaxX, it.Rect.MaxY} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	return buf
}

func decodeItem(b []byte) geom.Item {
	return geom.Item{
		ID: binary.LittleEndian.Uint32(b),
		Rect: geom.Rect{
			MinX: math.Float64frombits(binary.LittleEndian.Uint64(b[4:])),
			MinY: math.Float64frombits(binary.LittleEndian.Uint64(b[12:])),
			MaxX: math.Float64frombits(binary.LittleEndian.Uint64(b[20:])),
			MaxY: math.Float64frombits(binary.LittleEndian.Uint64(b[28:])),
		},
	}
}

// OpenState reconstructs a dynamized tree from a meta blob SaveState
// produced, reading the spill chains and reopening every level in place.
func OpenState(pager *storage.Pager, opt bulk.Options, meta []byte) (*Tree, error) {
	if len(meta) < dynHeaderSize {
		return nil, fmt.Errorf("logmethod: metadata record of %d bytes, want >= %d", len(meta), dynHeaderSize)
	}
	if [8]byte(meta[:8]) != dynMagic {
		return nil, fmt.Errorf("logmethod: bad directory magic %q", meta[:8])
	}
	u32 := func(off int) uint32 { return binary.LittleEndian.Uint32(meta[off:]) }
	base := int(u32(8))
	live := int(u32(12))
	stored := int(u32(16))
	bufHead := storage.PageID(u32(20))
	bufCount := int(u32(24))
	deadHead := storage.PageID(u32(28))
	deadCount := int(u32(32))
	nLevels := int(u32(36))
	if base <= 0 {
		return nil, fmt.Errorf("logmethod: non-positive base %d", base)
	}

	t := New(pager, opt, base)
	dev := pager.Backend()
	buffer, bufPages, err := readChain(dev, bufHead, bufCount)
	if err != nil {
		return nil, fmt.Errorf("logmethod: buffer chain: %w", err)
	}
	deadItems, deadPages, err := readChain(dev, deadHead, deadCount)
	if err != nil {
		return nil, fmt.Errorf("logmethod: tombstone chain: %w", err)
	}
	dead := make(map[uint32]geom.Rect, len(deadItems))
	for _, it := range deadItems {
		dead[it.ID] = it.Rect
	}

	levels := make([]*rtree.Tree, nLevels)
	off := dynHeaderSize
	for i := 0; i < nLevels; i++ {
		if off >= len(meta) {
			return nil, fmt.Errorf("logmethod: truncated level table at slot %d", i)
		}
		present := meta[off]
		off++
		if present == 0 {
			continue
		}
		if off+rtree.MetaSize > len(meta) {
			return nil, fmt.Errorf("logmethod: truncated level meta at slot %d", i)
		}
		l, err := rtree.OpenFromMeta(pager, meta[off:off+rtree.MetaSize])
		if err != nil {
			return nil, fmt.Errorf("logmethod: level %d: %w", i, err)
		}
		levels[i] = l
		off += rtree.MetaSize
	}

	t.st.Store(&state{
		buffer: buffer,
		levels: levels,
		dead:   dead,
		live:   live,
		stored: stored,
	})
	// The chains on disk are still the committed ones; the next SaveState
	// frees them when it writes replacements.
	t.spill = append(bufPages, deadPages...)
	return t, nil
}

// readChain walks a spill chain, returning its records and page ids.
// count is the expected total, used both to pre-size and as a corruption
// bound on the walk.
func readChain(dev storage.Backend, head storage.PageID, count int) ([]geom.Item, []storage.PageID, error) {
	if head == storage.NilPage {
		if count != 0 {
			return nil, nil, fmt.Errorf("empty chain with declared count %d", count)
		}
		return nil, nil, nil
	}
	out := make([]geom.Item, 0, count)
	var pages []storage.PageID
	buf := make([]byte, dev.BlockSize())
	for id := head; id != storage.NilPage; {
		if len(pages) > count+1 {
			return nil, nil, fmt.Errorf("chain longer than declared count %d", count)
		}
		pages = append(pages, id)
		dev.Read(id, buf)
		next := storage.PageID(binary.LittleEndian.Uint32(buf))
		n := int(binary.LittleEndian.Uint16(buf[4:]))
		if spillHeaderSize+n*itemRecSize > len(buf) {
			return nil, nil, fmt.Errorf("state page %d declares %d records", id, n)
		}
		for i := 0; i < n; i++ {
			out = append(out, decodeItem(buf[spillHeaderSize+i*itemRecSize:]))
		}
		id = next
	}
	if len(out) != count {
		return nil, nil, fmt.Errorf("chain holds %d records, meta declares %d", len(out), count)
	}
	return out, pages, nil
}
