package logmethod

import (
	"prtree/internal/bulk"
	"prtree/internal/geom"
	"prtree/internal/rtree"
)

// This file is the background-merge half of the logarithmic method: the
// carry protocol a compactor (internal/compact) drives. A carry runs in
// three phases:
//
//  1. BeginCarry (under the tree lock, O(1)): the buffer moves into the
//     state's merging slot and the occupied level prefix is claimed.
//     Readers keep seeing every item (buffer ∪ merging ∪ levels);
//     writers get a fresh empty buffer, so inserts during the merge land
//     there and are carried into the *next* merge.
//  2. Build (no locks, O(level) I/O): the merged level is bulk-loaded
//     off to the side onto fresh pages while readers serve the old
//     levels and writers commit their own transactions.
//  3. Install (under the tree lock, inside the caller's backend
//     transaction): the new level replaces the consumed components in
//     one atomic state swap, and the old levels' pages are freed —
//     epoch-pinned for any reader still traversing them. A crash before
//     the install commit recovers to the pre-carry state via WAL replay;
//     the half-built pages are garbage the next checkpoint truncates or,
//     if interleaved commits extended the file past them, a bounded leak
//     (never corruption — they are unreferenced).
//
// Abort unwinds phase 1: the merging snapshot returns to the buffer
// (dropping items tombstoned while in flight) and the half-built level is
// released or abandoned, depending on whether its pages are still safely
// owned (see Carry.Abort).

// Carry is an in-flight background merge. Exactly one may exist per tree;
// it is created by BeginCarry and consumed by Install or Abort.
type Carry struct {
	t        *Tree
	k        int           // target level
	items    []geom.Item   // the buffer snapshot (state.merging)
	consumed []*rtree.Tree // levels[0:k] at BeginCarry time
	built    *rtree.Tree
}

// CarryReady reports whether a background carry would start work right
// now: background mode, a full buffer, and no carry already in flight.
func (t *Tree) CarryReady() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.backgrnd && !t.flight && len(t.st.Load().buffer) >= t.base
}

// CarryKick returns the channel the tree signals (non-blocking, buffered)
// whenever an insert fills the buffer in background mode. A compactor
// selects on it to wake promptly instead of polling.
func (t *Tree) CarryKick() <-chan struct{} { return t.kick }

// SetBackground switches inline carries off (on=true): Insert only
// appends to the buffer and signals CarryKick, and a compactor is
// expected to drive BeginCarry/Build/Install. With on=false (the
// default), Insert carries synchronously inside the caller's own
// transaction bracket.
func (t *Tree) SetBackground(on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.backgrnd = on
}

// BeginCarry claims a merge: the buffer becomes the carry's input
// snapshot (readers still see it via state.merging) and the occupied
// level prefix is claimed. Returns (nil, false) when there is nothing to
// merge or a carry is already in flight.
func (t *Tree) BeginCarry() (*Carry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.st.Load()
	if t.flight || len(s.buffer) < t.base {
		return nil, false
	}
	k := 0
	for k < len(s.levels) && s.levels[k] != nil {
		k++
	}
	ns := *s
	ns.buffer = nil
	ns.merging = s.buffer
	ns.mergeK = k
	t.st.Store(&ns)
	t.flight = true
	return &Carry{
		t:        t,
		k:        k,
		items:    ns.merging,
		consumed: append([]*rtree.Tree(nil), s.levels[:k]...),
	}, true
}

// Build constructs the merged level off to the side. It takes no locks:
// the input snapshot and the consumed levels are frozen (BeginCarry
// guarantees no writer touches them until Install/Abort), and the bulk
// load writes only fresh pages. Safe to run concurrently with readers
// and with writer transactions. Tombstoned items are deliberately NOT
// filtered — a carry preserves physical contents, so a tombstone revived
// mid-merge (Insert of a dead id) stays correct.
func (c *Carry) Build() {
	n := len(c.items)
	for _, l := range c.consumed {
		n += l.Len()
	}
	items := make([]geom.Item, 0, n)
	items = append(items, c.items...)
	for _, l := range c.consumed {
		items = append(items, l.Items()...)
	}
	c.built = bulk.FromItems(bulk.LoaderPR, c.t.pager, items, c.t.opt)
}

// InputItems returns how many items the merge consumed in total.
func (c *Carry) InputItems() int {
	n := len(c.items)
	for _, l := range c.consumed {
		n += l.Len()
	}
	return n
}

// NewItems returns how many of the inputs came from the buffer snapshot
// (the newly absorbed items; the rest are rewrites of older levels).
func (c *Carry) NewItems() int { return len(c.items) }

// BuiltNodes returns the page count of the built level (0 before Build).
func (c *Carry) BuiltNodes() int {
	if c.built == nil {
		return 0
	}
	return c.built.Nodes()
}

// Install atomically swaps the built level in: the consumed levels and
// the merging snapshot leave the state, the new level enters, and the old
// levels' pages are freed (epoch-pinned while readers drain). The caller
// must bracket Install in the backend transaction that makes the swap
// durable — on a durable backend the frees join the committed freelist
// with that transaction, so crash recovery never leaks them.
func (c *Carry) Install() {
	t := c.t
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.st.Load()
	ns := *s
	ns.merging, ns.mergeK = nil, 0
	ns.levels = make([]*rtree.Tree, maxInt(len(s.levels), c.k+1))
	copy(ns.levels, s.levels)
	for i := 0; i < c.k; i++ {
		ns.levels[i] = nil
	}
	ns.levels[c.k] = c.built
	t.st.Store(&ns)
	for _, l := range c.consumed {
		// FreePages, not Release: readers on a pre-install snapshot still
		// traverse these structs; the epoch pins keep the freed bytes
		// stable and the untouched struct keeps their root loads safe.
		l.FreePages()
	}
	t.flight = false
	t.idle.Broadcast()
}

// Abort unwinds the carry: the merging snapshot returns to the buffer and
// the consumed levels stay in place. Items tombstoned while in flight are
// physically dropped on the way back (their tombstones go with them).
//
// releaseBuilt says whether the half-built level's pages may be freed for
// reuse: true normally; false when the allocator state was externally
// rolled back during the build (the pages may already belong to someone
// else — abandon them; on a durable backend they are reclaimed by the
// next checkpoint truncate or remain a bounded, unreferenced leak).
func (c *Carry) Abort(releaseBuilt bool) {
	t := c.t
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.st.Load()
	ns := *s
	buf := make([]geom.Item, 0, len(s.merging)+len(s.buffer))
	dead := s.dead
	copied := false
	for _, it := range s.merging {
		if r, gone := dead[it.ID]; gone && r == it.Rect {
			// Tombstoned while the carry was in flight: dropping the item
			// here removes it physically, so the tombstone resolves.
			if !copied {
				dead = copyDead(dead)
				copied = true
			}
			delete(dead, it.ID)
			ns.stored--
			continue
		}
		buf = append(buf, it)
	}
	buf = append(buf, s.buffer...)
	ns.buffer, ns.merging, ns.mergeK, ns.dead = buf, nil, 0, dead
	t.st.Store(&ns)
	if releaseBuilt && c.built != nil {
		c.built.Release()
	}
	c.built = nil
	t.flight = false
	t.idle.Broadcast()
}

// WaitCapacity blocks while a carry is in flight and the buffer holds at
// least limit items — the insert-path backpressure that bounds buffer
// growth to O(limit) while a slow merge completes. It must be called
// OUTSIDE any transaction bracket (the in-flight carry's install needs
// its own transaction to finish).
func (t *Tree) WaitCapacity(limit int) {
	t.mu.Lock()
	for t.flight && len(t.st.Load().buffer) >= limit {
		t.idle.Wait()
	}
	t.mu.Unlock()
}

// WaitIdle blocks until no carry is in flight. Same transaction caveat as
// WaitCapacity.
func (t *Tree) WaitIdle() {
	t.mu.Lock()
	for t.flight {
		t.idle.Wait()
	}
	t.mu.Unlock()
}

// TakeGCPending consumes the deferred tombstone-GC flag: it reports true
// (and clears the flag) when a rebuild was deferred because a carry was
// in flight and no carry is in flight now. The compactor calls it each
// cycle and runs RunGC inside a transaction when it fires.
func (t *Tree) TakeGCPending() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.gcPending || t.flight {
		return false
	}
	t.gcPending = false
	return true
}

// RunGC performs the tombstone-GC rebuild if one is still warranted. Like
// Insert/Delete it must run inside the caller's transaction bracket on
// durable backends. A no-op when a carry is in flight.
func (t *Tree) RunGC() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.flight {
		t.gcPending = true
		return
	}
	s := t.st.Load()
	if 2*len(s.dead) >= s.stored && s.stored > 0 {
		t.rebuildLocked()
	}
}
