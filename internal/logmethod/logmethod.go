// Package logmethod implements the dynamized PR-tree the paper sketches in
// Sections 1.2 and 4: the external logarithmic method (Bentley–Saxe
// dynamization as used by Arge & Vahrenhold and the Bkd-tree) layered over
// static PR-trees.
//
// The structure keeps an in-memory buffer of up to base rectangles plus a
// logarithmic number of static PR-trees, where level i is either empty or
// holds exactly base*2^i rectangles. Inserting into a full buffer merges
// the buffer with the occupied prefix of levels into the first empty level
// — a binary-counter carry — so every rectangle is rebuilt O(log(N/base))
// times, giving the amortized insertion bound of the paper while every
// level keeps the worst-case-optimal PR-tree query bound. Deletions use
// tombstones with a global rebuild once half the stored items are dead,
// the standard amortization.
package logmethod

import (
	"fmt"
	"sync"

	"prtree/internal/bulk"
	"prtree/internal/geom"
	"prtree/internal/rtree"
	"prtree/internal/storage"
)

// Tree is a dynamic spatial index over the logarithmic method.
// Item IDs must be unique across live items; Delete identifies items by
// (rect, id).
//
// The bulk.Options passed to New — including Options.Layout — apply to
// every static level the structure builds, so the logarithmic method runs
// on compressed pages the same way the one-shot loaders do.
type Tree struct {
	pager    *storage.Pager
	opt      bulk.Options
	base     int
	buffer   []geom.Item
	levels   []*rtree.Tree // levels[i] is nil or holds ~base*2^i items
	dead     map[uint32]geom.Rect
	live     int       // live items (excludes tombstoned ones)
	stored   int       // items physically present in buffer+levels
	visitors sync.Pool // query-path scratch (*levelVisitor)
	rebuf    []geom.Item
}

// New creates an empty dynamic tree. base is the buffer capacity (0 means
// one leaf's worth, i.e. the layout's fanout).
func New(pager *storage.Pager, opt bulk.Options, base int) *Tree {
	if base <= 0 {
		base = opt.Layout.MaxFanout(pager.Backend().BlockSize())
	}
	return &Tree{
		pager: pager,
		opt:   opt,
		base:  base,
		dead:  make(map[uint32]geom.Rect),
	}
}

// Len returns the number of live rectangles.
func (t *Tree) Len() int { return t.live }

// Levels returns the number of occupied static levels (for inspection).
func (t *Tree) Levels() int {
	n := 0
	for _, l := range t.levels {
		if l != nil {
			n++
		}
	}
	return n
}

// Insert adds a rectangle. Amortized cost is O((log_{M/B} N)(log2 N)/B)
// block I/Os; the worst case (a full carry) rebuilds O(N) items.
func (t *Tree) Insert(it geom.Item) {
	if r, ok := t.dead[it.ID]; ok {
		// Reinserting a tombstoned id revives it only if the rect matches;
		// otherwise the id would be ambiguous.
		if r != it.Rect {
			panic(fmt.Sprintf("logmethod: id %d reused with different rect", it.ID))
		}
		delete(t.dead, it.ID)
		t.live++
		return
	}
	t.buffer = append(t.buffer, it)
	t.live++
	t.stored++
	if len(t.buffer) >= t.base {
		t.carry()
	}
}

// carry merges the buffer and the occupied prefix of levels into the first
// empty level. The merge buffer is retained across carries (rebuf): every
// insertion that fills the in-memory buffer triggers one, so reusing the
// slice keeps the steady-state insert path allocation-lean.
func (t *Tree) carry() {
	k := 0
	for k < len(t.levels) && t.levels[k] != nil {
		k++
	}
	items := append(t.rebuf[:0], t.buffer...)
	t.buffer = t.buffer[:0]
	for i := 0; i < k; i++ {
		items = append(items, t.levels[i].Items()...)
		t.levels[i].Release()
		t.levels[i] = nil
	}
	for k >= len(t.levels) {
		t.levels = append(t.levels, nil)
	}
	// Retain only modestly sized buffers: small carries (the geometrically
	// common case) hit every base insertions, while a full-prefix carry is
	// rare and O(N)-sized — keeping that one alive would pin the largest
	// merge ever seen for the tree's lifetime.
	if cap(items) <= 16*t.base {
		t.rebuf = items
	} else {
		t.rebuf = nil
	}
	t.levels[k] = bulk.FromItems(bulk.LoaderPR, t.pager, items, t.opt)
}

// Delete removes the rectangle with the given rect and id, returning false
// if it is not stored (or already deleted). Deletions are tombstoned; once
// half the stored items are dead the structure rebuilds itself.
func (t *Tree) Delete(it geom.Item) bool {
	if _, gone := t.dead[it.ID]; gone {
		return false
	}
	// Fast path: still in the buffer.
	for i, b := range t.buffer {
		if b.ID == it.ID && b.Rect == it.Rect {
			t.buffer = append(t.buffer[:i], t.buffer[i+1:]...)
			t.live--
			t.stored--
			return true
		}
	}
	if !t.contains(it) {
		return false
	}
	t.dead[it.ID] = it.Rect
	t.live--
	if 2*len(t.dead) >= t.stored && t.stored > 0 {
		t.rebuild()
	}
	return true
}

// contains checks whether a (rect, id) pair is physically stored in one of
// the static levels.
func (t *Tree) contains(it geom.Item) bool {
	for _, l := range t.levels {
		if l == nil {
			continue
		}
		found := false
		l.Query(it.Rect, func(got geom.Item) bool {
			if got.ID == it.ID && got.Rect == it.Rect {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// rebuild compacts everything live into a single fresh structure.
func (t *Tree) rebuild() {
	items := make([]geom.Item, 0, t.live)
	items = append(items, t.buffer...)
	t.buffer = t.buffer[:0]
	for i, l := range t.levels {
		if l == nil {
			continue
		}
		for _, it := range l.Items() {
			if _, gone := t.dead[it.ID]; !gone {
				items = append(items, it)
			}
		}
		l.Release()
		t.levels[i] = nil
	}
	t.dead = make(map[uint32]geom.Rect)
	t.stored = len(items)
	t.live = len(items)
	if len(items) == 0 {
		return
	}
	// Small remainders go back to the buffer; otherwise the compacted tree
	// lands at the level matching its size (sizes are approximate after a
	// rebuild, which only affects constants in the amortized analysis).
	if len(items) < t.base {
		t.buffer = append(t.buffer, items...)
		return
	}
	k := 0
	for t.base<<uint(k+1) <= len(items) {
		k++
	}
	for k >= len(t.levels) {
		t.levels = append(t.levels, nil)
	}
	t.levels[k] = bulk.FromItems(bulk.LoaderPR, t.pager, items, t.opt)
}

// QueryStats aggregates the per-level query statistics.
type QueryStats struct {
	LeavesVisited int
	NodesVisited  int
	Results       int
}

// levelVisitor is pooled query-path scratch: it holds the per-query state
// the per-level callback closes over and owns one pre-bound closure
// (visit), created once per pooled instance. Pooling it — the same
// treatment PR 3 gave the rtree/prtreed traversal stacks — means a
// steady-state Query allocates nothing for its traversal plumbing, however
// many static levels it fans across. Nested queries (issued from fn) each
// grab their own visitor.
type levelVisitor struct {
	t       *Tree
	st      *QueryStats
	fn      func(geom.Item) bool
	aborted bool
	visit   func(geom.Item) bool
}

func (t *Tree) grabVisitor() *levelVisitor {
	v, _ := t.visitors.Get().(*levelVisitor)
	if v == nil {
		v = &levelVisitor{}
		v.visit = func(it geom.Item) bool {
			if _, gone := v.t.dead[it.ID]; gone {
				return true
			}
			v.st.Results++
			if v.fn != nil && !v.fn(it) {
				v.aborted = true
				return false
			}
			return true
		}
	}
	return v
}

func (t *Tree) releaseVisitor(v *levelVisitor) {
	v.t, v.st, v.fn = nil, nil, nil
	t.visitors.Put(v)
}

// Query reports every live rectangle intersecting q. Each static level is
// queried with its optimal PR-tree bound, so the total cost is
// O(log(N/base) * sqrt(N/B) + T/B) I/Os.
func (t *Tree) Query(q geom.Rect, fn func(geom.Item) bool) QueryStats {
	var st QueryStats
	for _, it := range t.buffer {
		if q.Intersects(it.Rect) {
			st.Results++
			if fn != nil && !fn(it) {
				return st
			}
		}
	}
	v := t.grabVisitor()
	defer t.releaseVisitor(v)
	v.t, v.st, v.fn, v.aborted = t, &st, fn, false
	for _, l := range t.levels {
		if l == nil {
			continue
		}
		ls := l.Query(q, v.visit)
		st.LeavesVisited += ls.LeavesVisited
		st.NodesVisited += ls.NodesVisited
		if v.aborted {
			return st
		}
	}
	return st
}

// QueryCollect returns all live rectangles intersecting q.
func (t *Tree) QueryCollect(q geom.Rect) []geom.Item {
	var out []geom.Item
	t.Query(q, func(it geom.Item) bool {
		out = append(out, it)
		return true
	})
	return out
}

// Flush compacts the structure into a single static PR-tree (plus an empty
// buffer), e.g. before a read-heavy phase.
func (t *Tree) Flush() {
	t.rebuild()
}

// Items returns every live rectangle.
func (t *Tree) Items() []geom.Item {
	out := make([]geom.Item, 0, t.live)
	out = append(out, t.buffer...)
	for _, l := range t.levels {
		if l == nil {
			continue
		}
		for _, it := range l.Items() {
			if _, gone := t.dead[it.ID]; !gone {
				out = append(out, it)
			}
		}
	}
	return out
}
