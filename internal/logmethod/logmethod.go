// Package logmethod implements the dynamized PR-tree the paper sketches in
// Sections 1.2 and 4: the external logarithmic method (Bentley–Saxe
// dynamization as used by Arge & Vahrenhold and the Bkd-tree) layered over
// static PR-trees.
//
// The structure keeps an in-memory buffer of up to base rectangles plus a
// logarithmic number of static PR-trees, where level i is either empty or
// holds exactly base*2^i rectangles. Inserting into a full buffer merges
// the buffer with the occupied prefix of levels into the first empty level
// — a binary-counter carry — so every rectangle is rebuilt O(log(N/base))
// times, giving the amortized insertion bound of the paper while every
// level keeps the worst-case-optimal PR-tree query bound. Deletions use
// tombstones with a global rebuild once half the stored items are dead,
// the standard amortization.
//
// # Concurrency
//
// The component directory — buffer, static levels, tombstones — is an
// immutable state value swapped through an atomic pointer. Readers
// (Query, Contained, Nearest, Items, Len) load the pointer once, bracket
// their page accesses with the backend's Snapshotter (see
// storage.Snapshotter), and never take a lock: a level a reader is
// traversing stays byte-stable even while a writer replaces and frees it,
// because the freed pages are epoch-pinned until the reader drains.
// Writers (Insert, Delete, Flush) serialize on an internal mutex and
// publish copy-on-write states: a visible buffer slice is never mutated
// in place, the tombstone map is copied per change, and replaced levels
// are released only after the new state is visible.
//
// Carry merges can also run off to the side: see carry.go and
// internal/compact for the background protocol (a merge consumes a
// snapshot of the buffer and the occupied level prefix while readers and
// writers keep going, then installs atomically).
package logmethod

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"prtree/internal/bulk"
	"prtree/internal/geom"
	"prtree/internal/rtree"
	"prtree/internal/storage"
)

// state is one immutable version of the component directory. Writers
// build a new state (sharing unchanged components) and publish it with an
// atomic store; readers load it once and use only what they loaded.
//
// Copy-on-write rules: buffer is append-only — growing it in place is
// safe (no published state can see past its own length), but removing an
// item allocates a fresh slice; dead is copied on every mutation; levels
// is copied whenever an entry changes. merging is the buffer snapshot an
// in-flight background carry consumed — still visible to queries, frozen
// until the carry installs or aborts.
type state struct {
	buffer  []geom.Item   // live items not yet in any static level
	merging []geom.Item   // buffer snapshot owned by the in-flight carry (nil when idle)
	mergeK  int           // levels[0:mergeK] are also consumed by that carry
	levels  []*rtree.Tree // levels[i] is nil or holds ~base*2^i items
	dead    map[uint32]geom.Rect
	live    int // live items (excludes tombstoned ones)
	stored  int // items physically present in buffer+merging+levels
}

// Tree is a dynamic spatial index over the logarithmic method.
// Item IDs must be unique across live items; Delete identifies items by
// (rect, id).
//
// The bulk.Options passed to New — including Options.Layout — apply to
// every static level the structure builds, so the logarithmic method runs
// on compressed pages the same way the one-shot loaders do.
//
// Queries are safe to run concurrently with each other and with
// mutations. Mutations serialize internally, but callers that bracket
// mutations in backend transactions (see prtree.Dynamic) must serialize
// those brackets themselves — backend transactions do not nest.
type Tree struct {
	pager *storage.Pager
	opt   bulk.Options
	base  int
	snap  storage.Snapshotter

	st atomic.Pointer[state]

	mu        sync.Mutex    // serializes writers and carry transitions
	idle      *sync.Cond    // broadcast when an in-flight carry installs or aborts
	flight    bool          // a background carry is in flight
	backgrnd  bool          // inline carries disabled; a compactor drives them
	gcPending bool          // a tombstone-GC rebuild is due but was deferred
	kick      chan struct{} // buffered signal: buffer is full, carry wanted

	visitors sync.Pool // query-path scratch (*levelVisitor)
	rebuf    []geom.Item

	spill []storage.PageID // state pages owned by the last SaveState
}

// New creates an empty dynamic tree. base is the buffer capacity (0 means
// one leaf's worth, i.e. the layout's fanout).
func New(pager *storage.Pager, opt bulk.Options, base int) *Tree {
	if base <= 0 {
		base = opt.Layout.MaxFanout(pager.Backend().BlockSize())
	}
	t := &Tree{
		pager: pager,
		opt:   opt,
		base:  base,
		snap:  storage.EnsureSnapshotter(pager.Backend()),
		kick:  make(chan struct{}, 1),
	}
	t.idle = sync.NewCond(&t.mu)
	t.st.Store(&state{dead: map[uint32]geom.Rect{}})
	return t
}

// Base returns the buffer capacity.
func (t *Tree) Base() int { return t.base }

// Len returns the number of live rectangles.
func (t *Tree) Len() int { return t.st.Load().live }

// BufferLen returns the number of items in the in-memory buffer (not
// counting a snapshot an in-flight carry owns).
func (t *Tree) BufferLen() int { return len(t.st.Load().buffer) }

// Levels returns the number of occupied static levels (for inspection).
func (t *Tree) Levels() int {
	n := 0
	for _, l := range t.st.Load().levels {
		if l != nil {
			n++
		}
	}
	return n
}

// LevelSizes returns the item count of each level slot (0 when empty),
// lowest level first — the structure's "binary counter" digits.
func (t *Tree) LevelSizes() []int {
	s := t.st.Load()
	out := make([]int, len(s.levels))
	for i, l := range s.levels {
		if l != nil {
			out[i] = l.Len()
		}
	}
	return out
}

// copyDead returns a mutable copy of m.
func copyDead(m map[uint32]geom.Rect) map[uint32]geom.Rect {
	out := make(map[uint32]geom.Rect, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Insert adds a rectangle. Amortized cost is O((log_{M/B} N)(log2 N)/B)
// block I/Os; the worst case (a full carry) rebuilds O(N) items — unless
// a background compactor is attached, in which case Insert only appends
// to the buffer and the carry runs off to the side.
func (t *Tree) Insert(it geom.Item) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.st.Load()
	if r, ok := s.dead[it.ID]; ok {
		// Reinserting a tombstoned id revives it only if the rect matches;
		// otherwise the id would be ambiguous.
		if r != it.Rect {
			panic(fmt.Sprintf("logmethod: id %d reused with different rect", it.ID))
		}
		ns := *s
		ns.dead = copyDead(s.dead)
		delete(ns.dead, it.ID)
		ns.live++
		t.st.Store(&ns)
		return
	}
	ns := *s
	ns.buffer = append(s.buffer, it) // append-only: safe to share the array
	ns.live++
	ns.stored++
	t.st.Store(&ns)
	if len(ns.buffer) >= t.base {
		if t.backgrnd {
			t.signalCarry()
		} else {
			t.carryLocked()
		}
	}
}

// signalCarry nudges the attached compactor without blocking.
func (t *Tree) signalCarry() {
	select {
	case t.kick <- struct{}{}:
	default:
	}
}

// carryLocked merges the buffer and the occupied prefix of levels into
// the first empty level, synchronously. The merge scratch is retained
// across carries (rebuf): every insertion that fills the in-memory buffer
// triggers one, so reusing the slice keeps the steady-state insert path
// allocation-lean. (The scratch is never published to readers — only the
// built tree is.) Caller holds t.mu with no carry in flight.
func (t *Tree) carryLocked() {
	s := t.st.Load()
	k := 0
	for k < len(s.levels) && s.levels[k] != nil {
		k++
	}
	items := append(t.rebuf[:0], s.buffer...)
	for i := 0; i < k; i++ {
		items = append(items, s.levels[i].Items()...)
	}
	// Retain only modestly sized buffers: small carries (the geometrically
	// common case) hit every base insertions, while a full-prefix carry is
	// rare and O(N)-sized — keeping that one alive would pin the largest
	// merge ever seen for the tree's lifetime.
	if cap(items) <= 16*t.base {
		t.rebuf = items
	} else {
		t.rebuf = nil
	}
	built := bulk.FromItems(bulk.LoaderPR, t.pager, items, t.opt)
	ns := *s
	ns.buffer = nil
	ns.levels = make([]*rtree.Tree, maxInt(len(s.levels), k+1))
	copy(ns.levels, s.levels)
	for i := 0; i < k; i++ {
		ns.levels[i] = nil
	}
	ns.levels[k] = built
	t.st.Store(&ns)
	// Free replaced levels only after the new state is visible, so a
	// reader still traversing them holds epoch pins on every freed page;
	// FreePages leaves the structs untouched for those same readers.
	for i := 0; i < k; i++ {
		s.levels[i].FreePages()
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Delete removes the rectangle with the given rect and id, returning false
// if it is not stored (or already deleted). Deletions are tombstoned; once
// half the stored items are dead the structure rebuilds itself (the
// rebuild is deferred while a background carry is in flight — the
// compactor picks it up when the carry lands).
func (t *Tree) Delete(it geom.Item) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.st.Load()
	if _, gone := s.dead[it.ID]; gone {
		return false
	}
	// Fast path: still in the buffer. Removal copies — the old slice may
	// be visible to in-flight readers.
	for i, b := range s.buffer {
		if b.ID == it.ID && b.Rect == it.Rect {
			ns := *s
			ns.buffer = make([]geom.Item, 0, len(s.buffer)-1)
			ns.buffer = append(append(ns.buffer, s.buffer[:i]...), s.buffer[i+1:]...)
			ns.live--
			ns.stored--
			t.st.Store(&ns)
			return true
		}
	}
	if !t.containsStored(s, it) {
		return false
	}
	ns := *s
	ns.dead = copyDead(s.dead)
	ns.dead[it.ID] = it.Rect
	ns.live--
	t.st.Store(&ns)
	if 2*len(ns.dead) >= ns.stored && ns.stored > 0 {
		if t.flight {
			// A background carry holds references to the levels; the GC
			// rebuild would release them. Defer it to the compactor.
			t.gcPending = true
		} else {
			t.rebuildLocked()
		}
	}
	return true
}

// containsStored checks whether a (rect, id) pair is physically present —
// in the in-flight carry's buffer snapshot or in a static level.
func (t *Tree) containsStored(s *state, it geom.Item) bool {
	for _, m := range s.merging {
		if m.ID == it.ID && m.Rect == it.Rect {
			return true
		}
	}
	for _, l := range s.levels {
		if l == nil {
			continue
		}
		found := false
		l.Query(it.Rect, func(got geom.Item) bool {
			if got.ID == it.ID && got.Rect == it.Rect {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// rebuildLocked compacts everything live into a single fresh structure.
// Caller holds t.mu with no carry in flight.
func (t *Tree) rebuildLocked() {
	s := t.st.Load()
	items := make([]geom.Item, 0, s.live)
	items = append(items, s.buffer...)
	for _, l := range s.levels {
		if l == nil {
			continue
		}
		for _, it := range l.Items() {
			if _, gone := s.dead[it.ID]; !gone {
				items = append(items, it)
			}
		}
	}
	ns := *s
	ns.buffer, ns.levels = nil, nil
	ns.dead = map[uint32]geom.Rect{}
	ns.stored = len(items)
	ns.live = len(items)
	// Small remainders go back to the buffer; otherwise the compacted tree
	// lands at the level matching its size (sizes are approximate after a
	// rebuild, which only affects constants in the amortized analysis).
	if len(items) > 0 && len(items) >= t.base {
		k := 0
		for t.base<<uint(k+1) <= len(items) {
			k++
		}
		ns.levels = make([]*rtree.Tree, k+1)
		ns.levels[k] = bulk.FromItems(bulk.LoaderPR, t.pager, items, t.opt)
	} else {
		ns.buffer = items
	}
	t.st.Store(&ns)
	t.gcPending = false
	for _, l := range s.levels {
		if l != nil {
			l.FreePages() // structs stay intact for stale-snapshot readers
		}
	}
}

// QueryStats aggregates the per-level query statistics.
type QueryStats struct {
	LeavesVisited int
	NodesVisited  int
	Results       int
}

// levelVisitor is pooled query-path scratch: it holds the per-query state
// the per-level callback closes over and owns one pre-bound closure
// (visit), created once per pooled instance. Pooling it — the same
// treatment PR 3 gave the rtree/prtreed traversal stacks — means a
// steady-state Query allocates nothing for its traversal plumbing, however
// many static levels it fans across. Nested queries (issued from fn) each
// grab their own visitor.
type levelVisitor struct {
	dead    map[uint32]geom.Rect
	st      *QueryStats
	fn      func(geom.Item) bool
	aborted bool
	visit   func(geom.Item) bool
}

func (t *Tree) grabVisitor() *levelVisitor {
	v, _ := t.visitors.Get().(*levelVisitor)
	if v == nil {
		v = &levelVisitor{}
		v.visit = func(it geom.Item) bool {
			if _, gone := v.dead[it.ID]; gone {
				return true
			}
			v.st.Results++
			if v.fn != nil && !v.fn(it) {
				v.aborted = true
				return false
			}
			return true
		}
	}
	return v
}

func (t *Tree) releaseVisitor(v *levelVisitor) {
	v.dead, v.st, v.fn = nil, nil, nil
	t.visitors.Put(v)
}

// enter loads a consistent state under a snapshot-reader bracket. The
// Enter precedes the load, so every page freed after the load is pinned
// until leave — a level in the loaded state stays traversable even while
// a concurrent carry replaces and frees it.
func (t *Tree) enter() (*state, uint64) {
	e := t.snap.SnapshotEnter()
	return t.st.Load(), e
}

// Query reports every live rectangle intersecting q. Each static level is
// queried with its optimal PR-tree bound, so the total cost is
// O(log(N/base) * sqrt(N/B) + T/B) I/Os. Safe to call concurrently with
// mutations and background carries.
func (t *Tree) Query(q geom.Rect, fn func(geom.Item) bool) QueryStats {
	s, e := t.enter()
	defer t.snap.SnapshotLeave(e)
	return t.queryState(s, q, false, fn)
}

// Contained reports every live rectangle fully contained in q.
func (t *Tree) Contained(q geom.Rect, fn func(geom.Item) bool) QueryStats {
	s, e := t.enter()
	defer t.snap.SnapshotLeave(e)
	return t.queryState(s, q, true, fn)
}

// queryState runs a window (or containment) query against one state.
// Buffer items are never tombstoned (Delete removes them physically), but
// the merging snapshot and the levels must be filtered against dead.
func (t *Tree) queryState(s *state, q geom.Rect, contain bool, fn func(geom.Item) bool) QueryStats {
	var st QueryStats
	match := func(r geom.Rect) bool {
		if contain {
			return q.Contains(r)
		}
		return q.Intersects(r)
	}
	for _, it := range s.buffer {
		if match(it.Rect) {
			st.Results++
			if fn != nil && !fn(it) {
				return st
			}
		}
	}
	for _, it := range s.merging {
		if _, gone := s.dead[it.ID]; gone {
			continue
		}
		if match(it.Rect) {
			st.Results++
			if fn != nil && !fn(it) {
				return st
			}
		}
	}
	v := t.grabVisitor()
	defer t.releaseVisitor(v)
	v.dead, v.st, v.fn, v.aborted = s.dead, &st, fn, false
	for _, l := range s.levels {
		if l == nil {
			continue
		}
		ls, _ := l.RunWindow(q, contain, v.visit, rtree.RunOptions{})
		st.LeavesVisited += ls.LeavesVisited
		st.NodesVisited += ls.NodesVisited
		if v.aborted {
			return st
		}
	}
	return st
}

// QueryCollect returns all live rectangles intersecting q.
func (t *Tree) QueryCollect(q geom.Rect) []geom.Item {
	var out []geom.Item
	t.Query(q, func(it geom.Item) bool {
		out = append(out, it)
		return true
	})
	return out
}

// Neighbor is a k-nearest-neighbor result: an item and its squared
// distance to the query point.
type Neighbor = rtree.Neighbor

// Nearest returns the k live rectangles closest to (x, y), in ascending
// (distance, id) order — the same deterministic order the static tree's
// best-first search emits, so dynamized results are comparable
// bit-for-bit with a one-shot build over the same live set.
func (t *Tree) Nearest(x, y float64, k int) []Neighbor {
	s, e := t.enter()
	defer t.snap.SnapshotLeave(e)
	if k <= 0 {
		return nil
	}
	var cand []Neighbor
	add := func(it geom.Item) {
		cand = append(cand, Neighbor{Item: it, Dist2: pointRectDist2(x, y, it.Rect)})
	}
	for _, it := range s.buffer {
		add(it)
	}
	for _, it := range s.merging {
		if _, gone := s.dead[it.ID]; !gone {
			add(it)
		}
	}
	// A level's k nearest may all be tombstoned, so over-fetch by the
	// tombstone count; the merge below filters and truncates.
	want := k + len(s.dead)
	for _, l := range s.levels {
		if l == nil {
			continue
		}
		nb, _, _ := l.RunNearest(x, y, want, rtree.RunOptions{})
		for _, n := range nb {
			if _, gone := s.dead[n.Item.ID]; !gone {
				cand = append(cand, n)
			}
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].Dist2 != cand[j].Dist2 {
			return cand[i].Dist2 < cand[j].Dist2
		}
		return cand[i].Item.ID < cand[j].Item.ID
	})
	if len(cand) > k {
		cand = cand[:k]
	}
	return cand
}

// pointRectDist2 returns the squared Euclidean distance from a point to
// the nearest point of r (0 if inside) — the metric the static tree's
// best-first search uses, duplicated here so merged results rank
// identically.
func pointRectDist2(x, y float64, r geom.Rect) float64 {
	var dx, dy float64
	switch {
	case x < r.MinX:
		dx = r.MinX - x
	case x > r.MaxX:
		dx = x - r.MaxX
	}
	switch {
	case y < r.MinY:
		dy = r.MinY - y
	case y > r.MaxY:
		dy = y - r.MaxY
	}
	return dx*dx + dy*dy
}

// Flush compacts the structure into a single static PR-tree (plus an empty
// buffer), e.g. before a read-heavy phase. If a background carry is in
// flight, Flush waits for it to land first; callers that drive carries
// through a compactor should drain it before flushing (see
// compact.Compactor.Drain) so the wait cannot deadlock on the caller's own
// transaction bracket.
func (t *Tree) Flush() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for t.flight {
		t.idle.Wait()
	}
	t.rebuildLocked()
}

// Items returns every live rectangle.
func (t *Tree) Items() []geom.Item {
	s, e := t.enter()
	defer t.snap.SnapshotLeave(e)
	out := make([]geom.Item, 0, s.live)
	out = append(out, s.buffer...)
	for _, it := range s.merging {
		if _, gone := s.dead[it.ID]; !gone {
			out = append(out, it)
		}
	}
	for _, l := range s.levels {
		if l == nil {
			continue
		}
		for _, it := range l.Items() {
			if _, gone := s.dead[it.ID]; !gone {
				out = append(out, it)
			}
		}
	}
	return out
}
