package bulk

import (
	"prtree/internal/geom"
	"prtree/internal/pseudo"
	"prtree/internal/rtree"
	"prtree/internal/storage"
)

// PRTree bulk-loads a Priority R-tree (Section 2.2 of the paper). The tree
// is built in stages bottom-up: stage 0 partitions the input rectangles
// into the leaves of a pseudo-PR-tree; stage i >= 1 partitions the bounding
// boxes of level i-1's nodes with a fresh pseudo-PR-tree whose leaves
// become level i; the pseudo trees' internal kd-nodes are discarded. The
// construction stops when the remaining bounding boxes fit in one node,
// which becomes the root.
//
// Each stage runs the external grid algorithm (O((n/B) log_{M/B}(n/B))
// I/Os on a stage of n rectangles), so the whole bulk-load costs
// O((N/B) log_{M/B}(N/B)) I/Os — about 2.5x the Hilbert loaders and far
// below TGS in measured block transfers, matching Figure 9. The resulting
// tree answers any window query in O(sqrt(N/B) + T/B) I/Os.
func PRTree(pager *storage.Pager, in *storage.ItemFile, opt Options) *rtree.Tree {
	opt = opt.normalized(pager.Backend().BlockSize())
	b := rtree.NewBuilder(pager, rtree.Config{Fanout: opt.Fanout, Split: opt.Split, Layout: opt.Layout})
	if in.Len() == 0 {
		in.Free()
		return b.FinishEmpty()
	}
	disk := pager.Backend()
	cfg := pseudo.ExternalConfig{B: opt.Fanout, M: opt.MemoryItems, Workers: opt.Parallelism}

	cur := in
	level := 0
	for {
		next := storage.NewItemFile(disk)
		count := 0
		var last rtree.ChildEntry
		pseudo.BuildExternal(disk, cur, cfg, func(lg pseudo.LeafGroup) {
			if level == 0 {
				// A pseudo-leaf group may become several pages when the
				// compressed layout falls back to raw; every page joins the
				// next stage as its own bounding box.
				for _, entry := range b.WriteLeaves(lg.Items) {
					next.Append(geom.Item{Rect: entry.Rect, ID: uint32(entry.Page)})
					last = entry
					count++
				}
				return
			}
			entry := b.WriteInternal(toChildEntries(lg.Items))
			next.Append(geom.Item{Rect: entry.Rect, ID: uint32(entry.Page)})
			last = entry
			count++
		})
		next.Seal()
		if count == 1 {
			next.Free()
			return b.Finish(last, level+1)
		}
		if count <= opt.Fanout {
			entries := toChildEntries(next.ReadAll())
			next.Free()
			root := b.WriteInternal(entries)
			return b.Finish(root, level+2)
		}
		cur = next
		level++
	}
}

// toChildEntries reinterprets bounding-box items produced by a previous
// stage (rect = node MBR, id = node page) as child entries.
func toChildEntries(items []geom.Item) []rtree.ChildEntry {
	out := make([]rtree.ChildEntry, len(items))
	for i, it := range items {
		out[i] = rtree.ChildEntry{Rect: it.Rect, Page: storage.PageID(it.ID)}
	}
	return out
}
