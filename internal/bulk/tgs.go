package bulk

import (
	"prtree/internal/extsort"
	"prtree/internal/geom"
	"prtree/internal/rtree"
	"prtree/internal/storage"
)

// TGS bulk-loads the Top-down Greedy Split R-tree of García, López and
// Leutenegger, in the variant the paper benchmarks: to build a node, the
// set is repeatedly divided in two with binary partitions until at most B
// subsets of (roughly) equal size remain, and each binary partition picks —
// among the four orderings xmin, ymin, xmax, ymax and O(B) candidate cut
// positions — the cut minimizing the sum of the areas of the two resulting
// bounding boxes. Subset sizes are powers of B (one remainder set), so one
// node per level may be underfull.
//
// Every cost evaluation scans the candidate ordering and every partition
// rewrites the four sorted lists, which is why TGS measures an order of
// magnitude more bulk-loading I/O than H (Figure 9): effectively
// O((N/B) log2 N) block transfers.
func TGS(pager *storage.Pager, in *storage.ItemFile, opt Options) *rtree.Tree {
	opt = opt.normalized(pager.Backend().BlockSize())
	b := rtree.NewBuilder(pager, rtree.Config{Fanout: opt.Fanout, Split: opt.Split, Layout: opt.Layout})
	n := in.Len()
	if n == 0 {
		in.Free()
		return b.FinishEmpty()
	}
	disk := pager.Backend()
	// TGS's top-down partition fixes the leaf group size before the groups
	// are known, so under the compressed layout it runs one probe pass
	// (N/B reads, dwarfed by TGS's O((N/B) log N) sort cost): when every
	// coordinate sits on a power-of-two grid coarse enough that any subset
	// quantizes losslessly, leaves pack at the full compressed capacity;
	// otherwise TGS packs at the raw capacity — the size every page can
	// hold — and takes the compressed win at the internal levels only.
	// The stream packers (H, H4, STR, PR) decide per page instead.
	leafCap := opt.Fanout
	if opt.Layout == rtree.LayoutCompressed && !probeLossless(in) {
		if raw := rtree.LayoutRaw.MaxFanout(disk.BlockSize()); raw < leafCap {
			leafCap = raw
		}
	}
	var lists [4]*storage.ItemFile
	// The four orderings are independent; with Parallelism > 1 they sort
	// concurrently (identical I/O counts — each sort performs its serial
	// reads and writes regardless of interleaving), each inner sort
	// taking a quarter of the worker budget.
	scfg := opt.sortConfig()
	scfg.Workers = (opt.Parallelism + 3) / 4
	extsort.Parallel(opt.Parallelism, 4, func(d int) {
		lists[d] = extsort.Sort(disk, in, extsort.AxisKey(d), scfg)
	})
	in.Free()
	t := &tgsBuilder{disk: disk, b: b, fanout: opt.Fanout, leafCap: leafCap}
	h := tgsHeight(n, leafCap, opt.Fanout)
	root := t.build(lists, h)
	return b.Finish(root, h)
}

// tgsHeight returns the minimum height h with leafCap*fanout^(h-1) >= n.
func tgsHeight(n, leafCap, fanout int) int {
	h, cap := 1, leafCap
	for cap < n {
		h++
		cap *= fanout
	}
	return h
}

type tgsBuilder struct {
	disk    storage.Backend
	b       *rtree.Builder
	fanout  int
	leafCap int
}

// orderKey is a point in the strict total order (coordinate, id) of one of
// the four orderings.
type orderKey struct {
	v   float64
	tie uint32
}

func (k orderKey) less(o orderKey) bool {
	if k.v != o.v {
		return k.v < o.v
	}
	return k.tie < o.tie
}

func tgsKey(it geom.Item, axis int) orderKey {
	return orderKey{v: it.Rect.Coord(axis), tie: it.ID}
}

// build constructs a subtree of the given height over the rectangles in
// lists (all four sorted orderings of the same set) and returns its entry.
func (t *tgsBuilder) build(lists [4]*storage.ItemFile, h int) rtree.ChildEntry {
	if h == 1 {
		items := lists[0].ReadAll()
		for d := 0; d < 4; d++ {
			lists[d].Free()
		}
		return t.b.WriteLeaf(items)
	}
	// m is the capacity of one height-(h-1) child subtree.
	m := t.leafCap
	for i := 0; i < h-2; i++ {
		m *= t.fanout
	}
	var children []rtree.ChildEntry
	t.partition(lists, m, h, &children)
	return t.b.WriteInternal(children)
}

// partition recursively binary-splits the set until pieces hold at most m
// records, then builds each piece as a height-(h-1) subtree.
func (t *tgsBuilder) partition(lists [4]*storage.ItemFile, m, h int, children *[]rtree.ChildEntry) {
	n := lists[0].Len()
	if n <= m {
		*children = append(*children, t.build(lists, h-1))
		return
	}
	axis, cut := t.bestCut(lists, m)
	left, right := t.splitLists(lists, axis, cut)
	t.partition(left, m, h, children)
	t.partition(right, m, h, children)
}

// bestCut evaluates, for each of the four orderings, every cut position at
// a multiple of m records, and returns the ordering and cut key minimizing
// the sum of the areas of the two bounding boxes (one scan per ordering).
func (t *tgsBuilder) bestCut(lists [4]*storage.ItemFile, m int) (int, orderKey) {
	n := lists[0].Len()
	nc := (n + m - 1) / m // number of chunks
	bestAxis, bestCost := -1, 0.0
	var bestKey orderKey
	for d := 0; d < 4; d++ {
		chunkMBR := make([]geom.Rect, nc)
		firstKey := make([]orderKey, nc)
		for i := range chunkMBR {
			chunkMBR[i] = geom.EmptyRect()
		}
		r := lists[d].Reader()
		for i := 0; ; i++ {
			it, ok := r.Next()
			if !ok {
				break
			}
			c := i / m
			if i%m == 0 {
				firstKey[c] = tgsKey(it, d)
			}
			chunkMBR[c] = chunkMBR[c].Union(it.Rect)
		}
		// Prefix/suffix bounding boxes over chunks.
		suffix := make([]geom.Rect, nc+1)
		suffix[nc] = geom.EmptyRect()
		for i := nc - 1; i >= 0; i-- {
			suffix[i] = suffix[i+1].Union(chunkMBR[i])
		}
		prefix := geom.EmptyRect()
		for c := 1; c < nc; c++ {
			prefix = prefix.Union(chunkMBR[c-1])
			cost := prefix.Area() + suffix[c].Area()
			if bestAxis == -1 || cost < bestCost {
				bestAxis, bestCost, bestKey = d, cost, firstKey[c]
			}
		}
	}
	return bestAxis, bestKey
}

// splitLists rewrites the four sorted lists into two sets: items ordering
// strictly before cut on axis go left. Each output list stays sorted
// because the scan preserves order.
func (t *tgsBuilder) splitLists(lists [4]*storage.ItemFile, axis int, cut orderKey) (left, right [4]*storage.ItemFile) {
	for d := 0; d < 4; d++ {
		left[d] = storage.NewItemFile(t.disk)
		right[d] = storage.NewItemFile(t.disk)
		r := lists[d].Reader()
		for {
			it, ok := r.Next()
			if !ok {
				break
			}
			if tgsKey(it, axis).less(cut) {
				left[d].Append(it)
			} else {
				right[d].Append(it)
			}
		}
		left[d].Seal()
		right[d].Seal()
		lists[d].Free()
	}
	return left, right
}
