package bulk

import (
	"math/rand"
	"runtime"
	"testing"

	"prtree/internal/geom"
	"prtree/internal/rtree"
	"prtree/internal/storage"
)

func randItems(n int, seed int64) []geom.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]geom.Item, n)
	for i := range items {
		x, y := rng.Float64(), rng.Float64()
		items[i] = geom.Item{
			Rect: geom.NewRect(x, y, x+rng.Float64()*0.01, y+rng.Float64()*0.01),
			ID:   uint32(i),
		}
	}
	return items
}

// allowParallelism raises GOMAXPROCS so the worker pool actually fans out
// even on single-CPU machines (Parallelism is clamped to GOMAXPROCS).
func allowParallelism() func() {
	old := runtime.GOMAXPROCS(4)
	return func() { runtime.GOMAXPROCS(old) }
}

func allLoaders() []Loader {
	return []Loader{LoaderHilbert, LoaderHilbert4D, LoaderSTR, LoaderTGS, LoaderPR}
}

func loadOn(tb testing.TB, l Loader, items []geom.Item, opt Options) *rtree.Tree {
	tb.Helper()
	disk := storage.NewDisk(storage.DefaultBlockSize)
	pager := storage.NewPager(disk, -1)
	return FromItems(l, pager, items, opt)
}

func TestLoaderStrings(t *testing.T) {
	want := map[Loader]string{
		LoaderHilbert: "H", LoaderHilbert4D: "H4", LoaderSTR: "STR",
		LoaderTGS: "TGS", LoaderPR: "PR",
	}
	for l, s := range want {
		if l.String() != s {
			t.Errorf("loader %d = %q, want %q", l, l.String(), s)
		}
	}
	if Loader(99).String() != "?" {
		t.Error("unknown loader should print ?")
	}
}

func TestAllLoadersValidTrees(t *testing.T) {
	items := randItems(5000, 1)
	for _, l := range allLoaders() {
		tr := loadOn(t, l, items, Options{Fanout: 16, MemoryItems: 1024})
		if tr.Len() != len(items) {
			t.Fatalf("%v: len = %d", l, tr.Len())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%v: %v", l, err)
		}
	}
}

func TestAllLoadersQueryCorrect(t *testing.T) {
	items := randItems(3000, 2)
	rng := rand.New(rand.NewSource(3))
	queries := make([]geom.Rect, 25)
	for i := range queries {
		queries[i] = geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
	}
	for _, l := range allLoaders() {
		tr := loadOn(t, l, items, Options{Fanout: 16, MemoryItems: 1024})
		for _, q := range queries {
			if err := rtree.CheckQueryAgainstBruteForce(tr, items, q); err != nil {
				t.Fatalf("%v: %v", l, err)
			}
		}
	}
}

func TestAllLoadersEmptyAndTiny(t *testing.T) {
	for _, l := range allLoaders() {
		tr := loadOn(t, l, nil, Options{})
		if tr.Len() != 0 || tr.Validate() != nil {
			t.Fatalf("%v: broken empty tree", l)
		}
		one := randItems(1, 4)
		tr = loadOn(t, l, one, Options{})
		if tr.Len() != 1 || tr.Height() != 1 {
			t.Fatalf("%v: single-item tree len=%d h=%d", l, tr.Len(), tr.Height())
		}
		if err := rtree.CheckQueryAgainstBruteForce(tr, one, geom.NewRect(0, 0, 2, 2)); err != nil {
			t.Fatalf("%v: %v", l, err)
		}
	}
}

func TestAllLoadersExactlyOneNode(t *testing.T) {
	for _, l := range allLoaders() {
		items := randItems(16, 5)
		tr := loadOn(t, l, items, Options{Fanout: 16})
		if tr.Height() != 1 {
			t.Fatalf("%v: height %d for exactly-full leaf", l, tr.Height())
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestUtilizationAbove99Percent(t *testing.T) {
	// Paper §3.3: every loader achieved > 99% space utilization. Use the
	// real fanout (113) and a dataset large enough for many leaves.
	items := randItems(113*150, 6)
	for _, l := range allLoaders() {
		tr := loadOn(t, l, items, Options{MemoryItems: 8192})
		leaf, _ := tr.Utilization()
		min := 0.99
		if l == LoaderTGS || l == LoaderPR {
			// TGS rounds subtree sizes to powers of B (one underfull node
			// per level); PR's kd leaves round to B with one remainder per
			// in-memory subtree. Both still stay very high.
			min = 0.95
		}
		if leaf < min {
			t.Errorf("%v: leaf utilization %.4f < %.2f", l, leaf, min)
		}
	}
}

func TestBuildIOOrdering(t *testing.T) {
	// Figure 9: I/O cost ordering H (cheapest) < PR < TGS, with
	// PR within a small factor of H and TGS well above PR.
	items := randItems(40000, 7)
	opt := Options{Fanout: 113, MemoryItems: 4096}
	cost := map[Loader]uint64{}
	for _, l := range []Loader{LoaderHilbert, LoaderPR, LoaderTGS} {
		disk := storage.NewDisk(storage.DefaultBlockSize)
		pager := storage.NewPager(disk, -1)
		in := storage.NewItemFileFrom(disk, items)
		disk.ResetStats()
		tr := Load(l, pager, in, opt)
		cost[l] = disk.Stats().Total()
		if err := tr.Validate(); err != nil {
			t.Fatalf("%v: %v", l, err)
		}
	}
	if !(cost[LoaderHilbert] < cost[LoaderPR] && cost[LoaderPR] < cost[LoaderTGS]) {
		t.Errorf("I/O ordering violated: H=%d PR=%d TGS=%d",
			cost[LoaderHilbert], cost[LoaderPR], cost[LoaderTGS])
	}
	if cost[LoaderPR] > 8*cost[LoaderHilbert] {
		t.Errorf("PR build cost %d too far above H %d", cost[LoaderPR], cost[LoaderHilbert])
	}
	if cost[LoaderTGS] < 2*cost[LoaderPR] {
		t.Errorf("TGS cost %d suspiciously close to PR %d", cost[LoaderTGS], cost[LoaderPR])
	}
}

func TestLoadersFreeScratchSpace(t *testing.T) {
	items := randItems(8000, 8)
	for _, l := range allLoaders() {
		disk := storage.NewDisk(storage.DefaultBlockSize)
		pager := storage.NewPager(disk, -1)
		tr := FromItems(l, pager, items, Options{Fanout: 32, MemoryItems: 2048})
		if disk.PagesInUse() != tr.Nodes() {
			t.Errorf("%v: %d pages in use for %d tree nodes (scratch leaked)",
				l, disk.PagesInUse(), tr.Nodes())
		}
	}
}

func TestTGSHeight(t *testing.T) {
	cases := []struct{ n, fanout, want int }{
		{1, 113, 1}, {113, 113, 1}, {114, 113, 2}, {113 * 113, 113, 2},
		{113*113 + 1, 113, 3}, {5, 2, 3}, {8, 2, 3}, {9, 2, 4},
	}
	for _, c := range cases {
		if got := tgsHeight(c.n, c.fanout, c.fanout); got != c.want {
			t.Errorf("tgsHeight(%d,%d) = %d, want %d", c.n, c.fanout, got, c.want)
		}
	}
}

func TestTGSPrefersVerticalCutOnColumns(t *testing.T) {
	// Mirror of the Theorem 3 intuition: on well-separated vertical
	// columns, TGS should cut between columns (keeping each column whole)
	// rather than across rows.
	var items []geom.Item
	id := uint32(0)
	for col := 0; col < 8; col++ {
		for row := 0; row < 16; row++ {
			x := float64(col)
			y := float64(row) / 16
			items = append(items, geom.Item{Rect: geom.PointRect(x+0.5, y), ID: id})
			id++
		}
	}
	tr := loadOn(t, LoaderTGS, items, Options{Fanout: 16})
	// Every leaf should span exactly one column (width 0).
	bad := 0
	tr.Walk(func(_ storage.PageID, _ int, isLeaf bool, entries []geom.Item) {
		if !isLeaf {
			return
		}
		mbr := geom.ItemsMBR(entries)
		if mbr.Width() > 0 {
			bad++
		}
	})
	if bad > 0 {
		t.Errorf("%d TGS leaves span multiple columns", bad)
	}
}

func TestPRTreeHandlesExtremeAspect(t *testing.T) {
	// Long skinny rectangles: PR must stay valid and correct.
	rng := rand.New(rand.NewSource(9))
	items := make([]geom.Item, 4000)
	for i := range items {
		x, y := rng.Float64(), rng.Float64()
		if i%2 == 0 {
			items[i] = geom.Item{Rect: geom.NewRect(x, y, x+0.5, y+1e-5), ID: uint32(i)}
		} else {
			items[i] = geom.Item{Rect: geom.NewRect(x, y, x+1e-5, y+0.5), ID: uint32(i)}
		}
	}
	tr := loadOn(t, LoaderPR, items, Options{Fanout: 16, MemoryItems: 1024})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		q := geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		if err := rtree.CheckQueryAgainstBruteForce(tr, items, q); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLoadersWithDefaultOptions(t *testing.T) {
	items := randItems(1000, 10)
	for _, l := range allLoaders() {
		tr := loadOn(t, l, items, Options{})
		if tr.Config().Fanout != 113 {
			t.Errorf("%v: default fanout = %d", l, tr.Config().Fanout)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%v: %v", l, err)
		}
	}
}

func TestLoadConsumesInput(t *testing.T) {
	disk := storage.NewDisk(storage.DefaultBlockSize)
	pager := storage.NewPager(disk, -1)
	in := storage.NewItemFileFrom(disk, randItems(500, 11))
	tr := Load(LoaderHilbert, pager, in, Options{Fanout: 16})
	// Input pages must have been freed.
	if disk.PagesInUse() != tr.Nodes() {
		t.Errorf("input not freed: %d pages in use, %d tree nodes", disk.PagesInUse(), tr.Nodes())
	}
}

func TestDuplicateRectsAllLoaders(t *testing.T) {
	items := make([]geom.Item, 600)
	for i := range items {
		items[i] = geom.Item{Rect: geom.NewRect(0.4, 0.4, 0.6, 0.6), ID: uint32(i)}
	}
	for _, l := range allLoaders() {
		tr := loadOn(t, l, items, Options{Fanout: 16, MemoryItems: 1024})
		if err := tr.Validate(); err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		if got := tr.QueryCount(geom.NewRect(0.5, 0.5, 0.5, 0.5)); got.Results != 600 {
			t.Fatalf("%v: found %d of 600 duplicates", l, got.Results)
		}
	}
}

// TestLoadersSerialParallelEquivalence checks the pipeline's determinism
// guarantee end to end: every loader must report identical disk read/write
// counters, build a tree of the same height and size, and answer queries
// identically at every Parallelism setting. (Page ids may differ — page
// allocation order is scheduling-dependent — so tree bytes are compared
// through query results, not raw pages.)
func TestLoadersSerialParallelEquivalence(t *testing.T) {
	defer allowParallelism()()
	items := randItems(9000, 5)
	queries := []geom.Rect{
		geom.NewRect(0.1, 0.1, 0.3, 0.4),
		geom.NewRect(0.5, 0.5, 0.52, 0.52),
		geom.NewRect(0, 0, 1.1, 1.1),
	}
	for _, l := range allLoaders() {
		type result struct {
			stats   storage.Stats
			len     int
			height  int
			results [3]int
			leaves  [3]int
		}
		measure := func(par int) result {
			disk := storage.NewDisk(storage.DefaultBlockSize)
			pager := storage.NewPager(disk, -1)
			in := storage.NewItemFileFrom(disk, items)
			disk.ResetStats()
			tr := Load(l, pager, in, Options{Fanout: 16, MemoryItems: 1024, Parallelism: par})
			r := result{stats: disk.Stats(), len: tr.Len(), height: tr.Height()}
			for i, q := range queries {
				st := tr.QueryCount(q)
				r.results[i] = st.Results
				r.leaves[i] = st.LeavesVisited
			}
			return r
		}
		serial := measure(1)
		for _, par := range []int{2, 4} {
			if got := measure(par); got != serial {
				t.Errorf("%v: parallelism %d diverges from serial:\n got %+v\nwant %+v", l, par, got, serial)
			}
		}
	}
}
