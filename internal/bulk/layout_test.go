package bulk

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"prtree/internal/geom"
	"prtree/internal/rtree"
	"prtree/internal/storage"
)

// snappedItems returns TIGER-ish rectangles on the 2^-16 grid.
func snappedItems(n int, seed int64) []geom.Item {
	rng := rand.New(rand.NewSource(seed))
	inv := math.Ldexp(1, -16)
	snap := func(v float64) float64 { return math.Floor(v*65536) * inv }
	items := make([]geom.Item, n)
	for i := range items {
		x, y := snap(rng.Float64()*0.9), snap(rng.Float64()*0.9)
		items[i] = geom.Item{
			Rect: geom.NewRect(x, y, x+snap(rng.Float64()*0.01), y+snap(rng.Float64()*0.01)),
			ID:   uint32(i),
		}
	}
	return items
}

func idSorted(items []geom.Item) []geom.Item {
	out := append([]geom.Item(nil), items...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TestLoadersCompressedLayout runs every loader under the compressed
// layout on both grid-aligned and full-precision data: trees must
// validate, answer queries identically to a raw-layout build of the same
// input, and (on grid data) occupy fewer pages.
func TestLoadersCompressedLayout(t *testing.T) {
	loaders := []Loader{LoaderHilbert, LoaderHilbert4D, LoaderSTR, LoaderTGS, LoaderPR}
	for _, l := range loaders {
		for _, grid := range []bool{true, false} {
			t.Run(fmt.Sprintf("%s/grid=%v", l, grid), func(t *testing.T) {
				var items []geom.Item
				if grid {
					items = snappedItems(6000, 42)
				} else {
					items = randItems(6000, 42)
				}
				build := func(layout rtree.Layout) *rtree.Tree {
					disk := storage.NewDisk(storage.DefaultBlockSize)
					pager := storage.NewPager(disk, -1)
					return FromItems(l, pager, items, Options{Layout: layout, MemoryItems: 1 << 14})
				}
				raw := build(rtree.LayoutRaw)
				comp := build(rtree.LayoutCompressed)
				if err := comp.Validate(); err != nil {
					t.Fatalf("compressed tree invalid: %v", err)
				}
				if comp.Len() != len(items) {
					t.Fatalf("lost items: %d != %d", comp.Len(), len(items))
				}
				if grid && comp.Nodes() >= raw.Nodes() {
					t.Errorf("compressed tree not smaller on grid data: %d vs %d pages", comp.Nodes(), raw.Nodes())
				}
				rng := rand.New(rand.NewSource(7))
				for i := 0; i < 25; i++ {
					x, y := rng.Float64(), rng.Float64()
					q := geom.NewRect(x, y, x+0.05+rng.Float64()*0.1, y+0.05+rng.Float64()*0.1)
					if err := rtree.CheckQueryAgainstBruteForce(comp, items, q); err != nil {
						t.Fatalf("compressed: %v", err)
					}
					a := idSorted(raw.QueryCollect(q))
					b := idSorted(comp.QueryCollect(q))
					if len(a) != len(b) {
						t.Fatalf("query %v: raw %d results, compressed %d", q, len(a), len(b))
					}
					for j := range a {
						if a[j] != b[j] {
							t.Fatalf("query %v result %d: %v != %v", q, j, a[j], b[j])
						}
					}
				}
			})
		}
	}
}

// TestCompressedBuildWritesFewerBlocks checks the bulk-loading side of the
// layout claim: page writes during the build drop with the higher fanout
// (the input streams stay 36-byte records, so the sort I/O is unchanged —
// only the emitted tree shrinks).
func TestCompressedBuildWritesFewerBlocks(t *testing.T) {
	items := snappedItems(20000, 9)
	measure := func(layout rtree.Layout) (uint64, int) {
		disk := storage.NewDisk(storage.DefaultBlockSize)
		pager := storage.NewPager(disk, -1)
		in := storage.NewItemFileFrom(disk, items)
		disk.ResetStats()
		tree := Load(LoaderHilbert, pager, in, Options{Layout: layout, MemoryItems: 1 << 14})
		return disk.Stats().Writes, tree.Nodes()
	}
	rawWrites, rawPages := measure(rtree.LayoutRaw)
	compWrites, compPages := measure(rtree.LayoutCompressed)
	if compPages*2 >= rawPages {
		t.Errorf("compressed pages %d not ~3x below raw %d", compPages, rawPages)
	}
	if compWrites >= rawWrites {
		t.Errorf("compressed build wrote %d blocks, raw %d", compWrites, rawWrites)
	}
}

// TestProbeLosslessDecidesTGSLeafCapacity pins the TGS capacity rule: on
// guaranteed-lossless data TGS packs compressed-capacity leaves; on
// full-precision data it packs raw-capacity leaves (and still validates).
func TestProbeLosslessDecidesTGSLeafCapacity(t *testing.T) {
	leafSizes := func(tr *rtree.Tree) (max int) {
		tr.Walk(func(_ storage.PageID, _ int, isLeaf bool, entries []geom.Item) {
			if isLeaf && len(entries) > max {
				max = len(entries)
			}
		})
		return max
	}
	build := func(items []geom.Item) *rtree.Tree {
		disk := storage.NewDisk(storage.DefaultBlockSize)
		return FromItems(LoaderTGS, storage.NewPager(disk, -1), items,
			Options{Layout: rtree.LayoutCompressed, MemoryItems: 1 << 14})
	}
	grid := build(snappedItems(4000, 3))
	if max := leafSizes(grid); max <= rtree.MaxFanout(storage.DefaultBlockSize) {
		t.Errorf("TGS on guaranteed data packed leaves of at most %d (raw capacity)", max)
	}
	noisy := build(randItems(4000, 3))
	if max := leafSizes(noisy); max > rtree.MaxFanout(storage.DefaultBlockSize) {
		t.Errorf("TGS on full-precision data packed a %d-entry leaf beyond the raw capacity", max)
	}
	for _, tr := range []*rtree.Tree{grid, noisy} {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
