package bulk

import (
	"math"

	"prtree/internal/extsort"
	"prtree/internal/geom"
	"prtree/internal/rtree"
	"prtree/internal/storage"
)

// STR bulk-loads a Sort-Tile-Recursive R-tree (Leutenegger, López and
// Edgington): rectangles are sorted by x-center, cut into ceil(sqrt(N/B))
// vertical slabs of equal record count, each slab is sorted by y-center,
// and leaves are packed within slabs. STR is an extra baseline beyond the
// paper's comparison set; it behaves like H on nice data.
func STR(pager *storage.Pager, in *storage.ItemFile, opt Options) *rtree.Tree {
	opt = opt.normalized(pager.Backend().BlockSize())
	b := rtree.NewBuilder(pager, rtree.Config{Fanout: opt.Fanout, Split: opt.Split, Layout: opt.Layout})
	n := in.Len()
	if n == 0 {
		in.Free()
		return b.FinishEmpty()
	}
	disk := pager.Backend()
	byX := extsort.Sort(disk, in, extsort.UintKey(func(it geom.Item) uint64 {
		cx, _ := it.Rect.Center()
		return extsort.Float64Key(cx)
	}), opt.sortConfig())
	in.Free()

	nLeaves := (n + opt.Fanout - 1) / opt.Fanout
	nSlabs := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	slabRecords := nSlabs * opt.Fanout

	var leaves []rtree.ChildEntry
	r := byX.Reader()
	slab := storage.NewItemFile(disk)
	flushSlab := func() {
		slab.Seal()
		if slab.Len() == 0 {
			slab.Free()
			return
		}
		byY := extsort.Sort(disk, slab, extsort.UintKey(func(it geom.Item) uint64 {
			_, cy := it.Rect.Center()
			return extsort.Float64Key(cy)
		}), opt.sortConfig())
		slab.Free()
		leaves = append(leaves, packSortedLeaves(b, byY)...)
	}
	for {
		it, ok := r.Next()
		if !ok {
			break
		}
		slab.Append(it)
		if slab.Len() == slabRecords {
			flushSlab()
			slab = storage.NewItemFile(disk)
		}
	}
	flushSlab()
	byX.Free()
	return b.FinishPacked(leaves)
}
