// Package bulk implements the four R-tree bulk-loading algorithms the
// paper compares — the packed Hilbert R-tree (H), the four-dimensional
// Hilbert R-tree (H4), the Top-down Greedy Split R-tree (TGS) and the
// PR-tree (PR) — plus STR as an extra baseline. Every loader consumes a
// storage.ItemFile and performs its passes through the simulated disk, so
// bulk-loading I/O is measured operationally, matching the accounting of
// the paper's Figures 9-11.
package bulk

import (
	"prtree/internal/extsort"
	"prtree/internal/geom"
	"prtree/internal/rtree"
	"prtree/internal/storage"
)

// Options tunes the loaders. The zero value selects the paper's setup:
// 4 KB blocks with fanout 113 and a default memory budget.
type Options struct {
	// Fanout caps node entries; 0 means the block-size maximum of the
	// layout (113 raw, 338 compressed at 4 KB).
	Fanout int
	// Layout selects the on-disk page format every loader emits; the zero
	// value is the paper's raw layout. Under rtree.LayoutCompressed,
	// internal pages always compress and leaf pages compress when their
	// coordinates quantize losslessly (falling back to raw pages
	// otherwise), so query results are identical under both layouts.
	Layout rtree.Layout
	// MemoryItems is M, the number of records that fit in main memory;
	// 0 means DefaultMemoryItems.
	MemoryItems int
	// HilbertBits is the per-dimension Hilbert resolution; 0 means 16.
	HilbertBits int
	// Split selects the heuristic used by *subsequent dynamic updates* on
	// the loaded tree (bulk loading itself never splits nodes).
	Split rtree.SplitKind
	// Parallelism bounds the bulk-load pipeline's worker pool (clamped to
	// GOMAXPROCS; 0 or 1 means serial). Every loader produces the same
	// tree shape and identical block-I/O counts at every setting — the
	// knob only spreads the CPU work (sorting, key computation, node
	// encoding of independent sort runs) across cores. Parallel loads
	// temporarily hold up to Parallelism+1 sort chunks of MemoryItems
	// records in memory; the PR and TGS loaders run their four axis
	// sorts concurrently with a quarter of the budget each, peaking at
	// about (Parallelism+4)x MemoryItems records transiently.
	Parallelism int
}

// DefaultMemoryItems corresponds to the paper's 64 MB of TPIE memory
// at 36 bytes per record, scaled down to keep laptop experiments honest:
// 2^16 records (~2.4 MB) so that external rounds actually happen at the
// dataset sizes the harness uses.
const DefaultMemoryItems = 1 << 16

func (o Options) normalized(blockSize int) Options {
	if max := o.Layout.MaxFanout(blockSize); o.Fanout <= 0 || o.Fanout > max {
		o.Fanout = max
	}
	if o.MemoryItems <= 0 {
		o.MemoryItems = DefaultMemoryItems
	}
	min := 4 * storage.ItemsPerBlock(blockSize)
	if o.MemoryItems < min {
		o.MemoryItems = min
	}
	if o.HilbertBits <= 0 {
		o.HilbertBits = 16
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 1
	}
	return o
}

// sortConfig returns the external-sort configuration the loader's sorts
// share.
func (o Options) sortConfig() extsort.Config {
	return extsort.Config{MemoryItems: o.MemoryItems, Workers: o.Parallelism}
}

// Loader identifies a bulk-loading algorithm.
type Loader int

const (
	// LoaderHilbert is the packed Hilbert R-tree (H in the paper).
	LoaderHilbert Loader = iota
	// LoaderHilbert4D is the four-dimensional Hilbert R-tree (H4).
	LoaderHilbert4D
	// LoaderSTR is the Sort-Tile-Recursive packing of Leutenegger et al.
	LoaderSTR
	// LoaderTGS is the Top-down Greedy Split R-tree (TGS).
	LoaderTGS
	// LoaderPR is the Priority R-tree (PR), the paper's contribution.
	LoaderPR
)

// String returns the paper's abbreviation for the loader.
func (l Loader) String() string {
	switch l {
	case LoaderHilbert:
		return "H"
	case LoaderHilbert4D:
		return "H4"
	case LoaderSTR:
		return "STR"
	case LoaderTGS:
		return "TGS"
	case LoaderPR:
		return "PR"
	default:
		return "?"
	}
}

// Load bulk-loads a tree with the chosen algorithm, consuming in.
func Load(l Loader, pager *storage.Pager, in *storage.ItemFile, opt Options) *rtree.Tree {
	switch l {
	case LoaderHilbert:
		return Hilbert2D(pager, in, opt)
	case LoaderHilbert4D:
		return Hilbert4D(pager, in, opt)
	case LoaderSTR:
		return STR(pager, in, opt)
	case LoaderTGS:
		return TGS(pager, in, opt)
	case LoaderPR:
		return PRTree(pager, in, opt)
	default:
		panic("bulk: unknown loader")
	}
}

// Loaders lists every algorithm in the paper's presentation order.
var Loaders = []Loader{LoaderHilbert, LoaderHilbert4D, LoaderPR, LoaderTGS}

// FromItems is a convenience wrapper: it writes items to a fresh file on
// the pager's disk (counting the writes) and bulk-loads it.
func FromItems(l Loader, pager *storage.Pager, items []geom.Item, opt Options) *rtree.Tree {
	return Load(l, pager, storage.NewItemFileFrom(pager.Backend(), items), opt)
}

// probeLossless scans a file (one linear pass, counted I/O) and reports
// whether every possible leaf grouping of its rectangles is guaranteed to
// quantize losslessly under the compressed layout.
func probeLossless(f *storage.ItemFile) bool {
	p := geom.NewLosslessProbe()
	r := f.Reader()
	for {
		it, ok := r.Next()
		if !ok {
			return p.Guaranteed()
		}
		p.Add(it.Rect)
	}
}

// worldOf scans a file for its bounding box (one linear pass).
func worldOf(f *storage.ItemFile) geom.Rect {
	world := geom.EmptyRect()
	r := f.Reader()
	for {
		it, ok := r.Next()
		if !ok {
			return world
		}
		world = world.Union(it.Rect)
	}
}

// packSortedLeaves streams a sorted file into full leaves (the final leaf
// may be partial) and returns their child entries in order. The file is
// freed afterwards. Groups use the layout's full leaf capacity; under the
// compressed layout a group that does not quantize losslessly becomes
// several raw pages (WriteLeaves), which only lengthens the entry list.
func packSortedLeaves(b *rtree.Builder, sorted *storage.ItemFile) []rtree.ChildEntry {
	cap := b.LeafCapacity()
	leaves := make([]rtree.ChildEntry, 0, sorted.Len()/cap+1)
	buf := make([]geom.Item, 0, cap)
	r := sorted.Reader()
	for {
		it, ok := r.Next()
		if !ok {
			break
		}
		buf = append(buf, it)
		if len(buf) == cap {
			leaves = append(leaves, b.WriteLeaves(buf)...)
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		leaves = append(leaves, b.WriteLeaves(buf)...)
	}
	sorted.Free()
	return leaves
}
