package bulk

import (
	"prtree/internal/extsort"
	"prtree/internal/geom"
	"prtree/internal/hilbert"
	"prtree/internal/rtree"
	"prtree/internal/storage"
)

// Hilbert2D bulk-loads the packed Hilbert R-tree of Kamel and Faloutsos:
// rectangles are sorted by the Hilbert value of their centers, placed into
// full leaves in that order, and the upper levels are packed bottom-up.
// Cost: one scan for the world box, one external sort, one packing pass —
// O((N/B) log_{M/B}(N/B)) I/Os, the cheapest loader in Figure 9.
func Hilbert2D(pager *storage.Pager, in *storage.ItemFile, opt Options) *rtree.Tree {
	opt = opt.normalized(pager.Backend().BlockSize())
	b := rtree.NewBuilder(pager, rtree.Config{Fanout: opt.Fanout, Split: opt.Split, Layout: opt.Layout})
	if in.Len() == 0 {
		in.Free()
		return b.FinishEmpty()
	}
	q := hilbert.NewQuantizer2D(worldOf(in), opt.HilbertBits)
	sorted := extsort.Sort(pager.Backend(), in, extsort.UintKey(func(it geom.Item) uint64 {
		return q.CenterKey(it.Rect)
	}), opt.sortConfig())
	in.Free()
	return b.FinishPacked(packSortedLeaves(b, sorted))
}

// Hilbert4D bulk-loads the four-dimensional Hilbert R-tree: rectangles are
// mapped to the 4D points (xmin, ymin, xmax, ymax) and sorted along the 4D
// Hilbert curve, so the ordering is extent-aware. Same I/O cost as
// Hilbert2D.
func Hilbert4D(pager *storage.Pager, in *storage.ItemFile, opt Options) *rtree.Tree {
	opt = opt.normalized(pager.Backend().BlockSize())
	b := rtree.NewBuilder(pager, rtree.Config{Fanout: opt.Fanout, Split: opt.Split, Layout: opt.Layout})
	if in.Len() == 0 {
		in.Free()
		return b.FinishEmpty()
	}
	q := hilbert.NewQuantizer4D(worldOf(in), opt.HilbertBits)
	sorted := extsort.Sort(pager.Backend(), in, extsort.UintKey(func(it geom.Item) uint64 {
		return q.Key(it.Rect)
	}), opt.sortConfig())
	in.Free()
	return b.FinishPacked(packSortedLeaves(b, sorted))
}
