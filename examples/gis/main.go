// GIS workload: index a TIGER-like road dataset with all four bulk
// loaders the paper compares and measure window-query cost the way the
// paper does — leaf blocks read versus the T/B reporting lower bound.
//
// This is the motivating scenario of the paper's introduction: a spatial
// database of road-segment bounding boxes serving map-window queries.
package main

import (
	"fmt"

	"prtree"
	"prtree/internal/dataset"
	"prtree/internal/geom"
	"prtree/internal/workload"
)

func main() {
	const n = 50000
	roads := dataset.Eastern(n, 42)
	fmt.Printf("dataset: %d road-segment bounding boxes (TIGER-like)\n\n", n)

	world := geom.ItemsMBR(roads)
	queries := workload.Squares(world, 0.01, 50, 7)

	fmt.Printf("%-4s  %8s  %8s  %10s  %8s\n", "tree", "height", "pages", "leaf fill", "cost")
	for _, loader := range []prtree.Loader{prtree.Hilbert, prtree.Hilbert4D, prtree.PR, prtree.TGS} {
		tree := prtree.BulkWith(loader, roads, nil)
		leafFill, _ := tree.Utilization()

		var leaves, results int
		for _, q := range queries {
			var st prtree.QueryStats
			_ = tree.Run(prtree.Window(q).WithStats(&st), nil)
			leaves += st.LeavesVisited
			results += st.Results
		}
		// The paper's metric: blocks read per T/B output blocks.
		cost := 100 * float64(leaves) / (float64(results) / 113)
		fmt.Printf("%-4v  %8d  %8d  %9.1f%%  %7.1f%%\n",
			loader, tree.Height(), tree.Nodes(), 100*leafFill, cost)
	}
	fmt.Println("\ncost 100% = every block read carried a full block of results")
	fmt.Println("(paper Fig. 12-14: all four trees are within ~10% on TIGER data)")
}
