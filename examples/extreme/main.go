// Extreme data: the headline result of the paper. On adversarial inputs —
// the CLUSTER dataset and the Theorem 3 bit-reversal grid — the heuristic
// R-trees collapse to scanning nearly every leaf while the PR-tree keeps
// its O(sqrt(N/B) + T/B) guarantee.
package main

import (
	"fmt"
	"math"

	"prtree"
	"prtree/internal/dataset"
)

func main() {
	const b = 113

	fmt.Println("--- CLUSTER: 1000-point clusters on a line, skinny probes (paper Table 1) ---")
	clItems := dataset.Cluster(100000, dataset.ClusterOptions{}, 1)
	probe := dataset.ClusterProbe(dataset.ClusterOptions{}, 1)
	for _, loader := range []prtree.Loader{prtree.Hilbert, prtree.Hilbert4D, prtree.PR, prtree.TGS} {
		tree := prtree.BulkWith(loader, clItems, nil)
		var st prtree.QueryStats
		_ = tree.Run(prtree.Window(probe).WithStats(&st), nil)
		leaves := (tree.Len() + b - 1) / b
		fmt.Printf("%-4v visited %5d of %d leaves (%5.1f%%) for %d results\n",
			loader, st.LeavesVisited, leaves,
			100*float64(st.LeavesVisited)/float64(leaves), st.Results)
	}

	fmt.Println()
	fmt.Println("--- THEOREM 3: bit-reversal grid, zero-output line query ---")
	wcItems := dataset.WorstCase(100000, b)
	wcProbe := dataset.WorstCaseProbe(100000, b, 3)
	ref := math.Sqrt(float64(len(wcItems)) / b)
	for _, loader := range []prtree.Loader{prtree.Hilbert, prtree.Hilbert4D, prtree.PR, prtree.TGS} {
		tree := prtree.BulkWith(loader, wcItems, nil)
		var st prtree.QueryStats
		_ = tree.Run(prtree.Window(wcProbe).WithStats(&st), nil)
		leaves := (tree.Len() + b - 1) / b
		fmt.Printf("%-4v visited %5d of %d leaves (%5.1f%%) reporting %d  [sqrt(N/B)=%.0f]\n",
			loader, st.LeavesVisited, leaves,
			100*float64(st.LeavesVisited)/float64(leaves), st.Results, ref)
	}
	fmt.Println("\nthe PR-tree is the only variant whose cost tracks sqrt(N/B) instead of N/B")
}
