// Persistent indexing with the file-backed storage backend: build an
// index once into a page file, close it, and serve queries from a fresh
// process with zero rebuild work — the v2 Create/Open/Close lifecycle
// that replaces the v1 Save/Load round-trip through an in-memory copy.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"prtree"
)

func main() {
	path := filepath.Join(os.TempDir(), "persist-example.pr")
	defer os.Remove(path)

	// Build phase: create the index file and bulk-load it in place.
	rng := rand.New(rand.NewSource(7))
	items := make([]prtree.Item, 20000)
	for i := range items {
		x, y := rng.Float64(), rng.Float64()
		items[i] = prtree.Item{Rect: prtree.NewRect(x, y, x+0.001, y+0.001), ID: uint32(i)}
	}
	tree, err := prtree.Create(path, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := tree.BulkLoad(prtree.PR, items); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d items into %s (height %d, %d pages)\n",
		tree.Len(), filepath.Base(path), tree.Height(), tree.Nodes())
	if err := tree.Close(); err != nil {
		log.Fatal(err)
	}

	// Serve phase: reopen in place — no rebuild, no snapshot restore.
	tree, err = prtree.Open(path, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()
	open := tree.IOStats()
	fmt.Printf("reopened: %d items, %d block I/Os spent reopening (zero rebuild)\n",
		tree.Len(), open.Total())

	// The unified query surface works identically on file-backed trees:
	// a window iterator with a result limit...
	q := prtree.Window(prtree.NewRect(0.25, 0.25, 0.3, 0.3)).WithLimit(5)
	fmt.Println("first five hits in the window:")
	for it := range tree.Iter(q) {
		fmt.Printf("  id=%d\n", it.ID)
	}

	// ...k-nearest-neighbors...
	fmt.Println("three nearest the center:")
	for it := range tree.Iter(prtree.Nearest(0.5, 0.5, 3)) {
		fmt.Printf("  id=%d\n", it.ID)
	}

	// ...and cooperative cancellation, checked at node-visit granularity.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Microsecond) // let the deadline lapse
	err = tree.Run(prtree.Window(tree.MBR()).WithContext(ctx), func(prtree.Item) bool { return true })
	fmt.Printf("canceled full scan returned: %v\n", err)
}
