// Quickstart: bulk-load a Priority R-tree and run a window query.
package main

import (
	"fmt"

	"prtree"
)

func main() {
	// A handful of city bounding boxes (minx, miny, maxx, maxy).
	items := []prtree.Item{
		{Rect: prtree.NewRect(4.85, 52.33, 4.95, 52.42), ID: 1},     // Amsterdam
		{Rect: prtree.NewRect(10.10, 56.12, 10.25, 56.20), ID: 2},   // Aarhus
		{Rect: prtree.NewRect(5.43, 51.40, 5.52, 51.47), ID: 3},     // Eindhoven
		{Rect: prtree.NewRect(-78.99, 35.93, -78.85, 36.08), ID: 4}, // Durham
		{Rect: prtree.NewRect(12.45, 55.61, 12.65, 55.73), ID: 5},   // Copenhagen
	}

	// Bulk-load with the PR-tree algorithm (worst-case optimal queries).
	tree := prtree.Bulk(items, nil)
	fmt.Printf("indexed %d rectangles, height %d, %d disk pages\n",
		tree.Len(), tree.Height(), tree.Nodes())

	// Window query: everything in western Europe, consumed as a pull
	// iterator (the v2 query surface).
	q := prtree.NewRect(0, 50, 15, 60)
	fmt.Printf("query %v:\n", q)
	var st prtree.QueryStats
	for it := range tree.Iter(prtree.Window(q).WithStats(&st)) {
		fmt.Printf("  hit id=%d rect=%v\n", it.ID, it.Rect)
	}
	fmt.Printf("visited %d nodes (%d leaf blocks) for %d results\n",
		st.NodesVisited, st.LeavesVisited, st.Results)

	// Dynamic updates are available too (Guttman's algorithms).
	tree.Insert(prtree.Item{Rect: prtree.NewRect(8.5, 47.3, 8.6, 47.43), ID: 6}) // Zurich
	tree.Delete(items[0])
	fmt.Printf("after update: %d rectangles, %d hits in Europe\n",
		tree.Len(), len(tree.Search(q)))
}
