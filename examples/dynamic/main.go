// Dynamic indexing with the logarithmic method: the paper's proposal for
// supporting insertions and deletions while keeping the PR-tree's
// worst-case optimal query bound (Sections 1.2 and 4).
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"prtree"
)

func main() {
	out := flag.String("out", "", "also persist a file-backed index with background compaction at this path")
	flag.Parse()

	idx := prtree.NewDynamic(nil)
	rng := rand.New(rand.NewSource(99))

	// A feed of moving-object bounding boxes: insert 30k, then churn.
	fmt.Println("inserting 30000 rectangles...")
	items := make([]prtree.Item, 30000)
	for i := range items {
		x, y := rng.Float64(), rng.Float64()
		items[i] = prtree.Item{
			Rect: prtree.NewRect(x, y, x+0.002, y+0.002),
			ID:   uint32(i),
		}
		idx.Insert(items[i])
	}
	io := idx.IOStats()
	fmt.Printf("amortized insert cost: %.3f block I/Os per item\n",
		float64(io.Total())/30000)

	fmt.Println("\nchurn: delete 10000, insert 10000 replacements...")
	idx.ResetIOStats()
	for i := 0; i < 10000; i++ {
		idx.Delete(items[i])
		x, y := rng.Float64(), rng.Float64()
		idx.Insert(prtree.Item{
			Rect: prtree.NewRect(x, y, x+0.002, y+0.002),
			ID:   uint32(100000 + i),
		})
	}
	fmt.Printf("live items: %d\n", idx.Len())

	q := prtree.NewRect(0.4, 0.4, 0.5, 0.5)
	st := idx.Query(q, nil)
	fmt.Printf("query %v: %d results, %d leaf blocks across levels\n",
		q, st.Results, st.LeavesVisited)

	// Compact before a read-heavy phase: one static PR-tree again.
	idx.Flush()
	st = idx.Query(q, nil)
	fmt.Printf("after flush: %d results, %d leaf blocks (single level)\n",
		st.Results, st.LeavesVisited)

	if *out == "" {
		return
	}

	// The same index, durable and with online compaction: merges run in a
	// background goroutine while InsertE returns after an O(1) buffer
	// append, and readers keep serving snapshot-isolated pages throughout.
	fmt.Printf("\npersisting a background-compacted index at %s...\n", *out)
	d, err := prtree.CreateDynamic(*out, &prtree.Options{BackgroundCompaction: true})
	if err != nil {
		panic(err)
	}
	for _, it := range items {
		if err := d.InsertE(it); err != nil {
			panic(err)
		}
	}
	cs := d.CompactionStats()
	fmt.Printf("background merges: %d completed, %d aborted, write amp %.2f\n",
		cs.MergesCompleted, cs.MergesAborted, cs.WriteAmplification)
	if err := d.Close(); err != nil {
		panic(err)
	}
	fmt.Println("closed; reopen with prtree.OpenDynamic or compact with `prtool -index", *out, "compact`")
}
