package prtree_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"prtree"
)

// ExampleCreate builds a file-backed index, closes it, and reopens it in
// place with Open — the v2 persistence lifecycle.
func ExampleCreate() {
	path := filepath.Join(os.TempDir(), "example-create.pr")
	defer os.Remove(path)

	tree, err := prtree.Create(path, nil)
	if err != nil {
		log.Fatal(err)
	}
	items := []prtree.Item{
		{Rect: prtree.NewRect(0, 0, 1, 1), ID: 1},
		{Rect: prtree.NewRect(2, 2, 3, 3), ID: 2},
		{Rect: prtree.NewRect(4, 4, 5, 5), ID: 3},
	}
	if err := tree.BulkLoad(prtree.PR, items); err != nil {
		log.Fatal(err)
	}
	if err := tree.Close(); err != nil {
		log.Fatal(err)
	}

	reopened, err := prtree.Open(path, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	fmt.Println("items after reopen:", reopened.Len())
	// Output:
	// items after reopen: 3
}

// ExampleTree_Iter consumes a composable window query through the Go 1.23
// range-over-func iterator.
func ExampleTree_Iter() {
	items := []prtree.Item{
		{Rect: prtree.NewRect(0, 0, 1, 1), ID: 10},
		{Rect: prtree.NewRect(2, 2, 3, 3), ID: 20},
		{Rect: prtree.NewRect(2.5, 2.5, 4, 4), ID: 30},
	}
	tree := prtree.Bulk(items, nil)

	var st prtree.QueryStats
	q := prtree.Window(prtree.NewRect(2, 2, 5, 5)).WithStats(&st)
	for it := range tree.Iter(q) {
		fmt.Println("hit", it.ID)
	}
	fmt.Println("results:", st.Results)
	// Output:
	// hit 20
	// hit 30
	// results: 2
}

// ExampleNearest yields the k closest items in ascending distance order.
func ExampleNearest() {
	items := []prtree.Item{
		{Rect: prtree.NewRect(0, 0, 1, 1), ID: 1},
		{Rect: prtree.NewRect(5, 5, 6, 6), ID: 2},
		{Rect: prtree.NewRect(9, 9, 10, 10), ID: 3},
	}
	tree := prtree.Bulk(items, nil)
	for it := range tree.Iter(prtree.Nearest(4, 4, 2)) {
		fmt.Println("neighbor", it.ID)
	}
	// Output:
	// neighbor 2
	// neighbor 1
}
